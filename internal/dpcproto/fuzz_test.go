package dpcproto

import (
	"bytes"
	"testing"
)

// FuzzRead drives the sideband wire decoder with coverage-guided byte
// streams. Invariants: Read never panics, never spins (every call makes
// progress or errors), and a stream the writer produced round-trips.
func FuzzRead(f *testing.F) {
	// Seed corpus: each record kind alone and a mixed stream, written by
	// the real writer so the fuzzer starts on valid framing.
	record := func(recs ...Record) []byte {
		var buf bytes.Buffer
		for _, r := range recs {
			if err := Write(&buf, r); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add(record(Replay{DPID: 0x42, InPort: 3, Frame: []byte("0123456789abcdef")}))
	f.Add(record(Replay{DPID: 0x42, InPort: 3, Hint: 2, Frame: []byte("0123456789abcdef")}))
	f.Add(record(Rate{PPS: 125.5}))
	f.Add(record(Stats{Backlog: 7, Enqueued: 100, Emitted: 90, Dropped: 3}))
	f.Add(record(
		Replay{DPID: 1, InPort: 1, Frame: make([]byte, 64)},
		Rate{PPS: 10},
		Stats{},
		Replay{DPID: 2, InPort: 2, Frame: []byte{0xff}},
	))
	f.Add([]byte{})
	f.Add([]byte{0xfd, 0x0c})       // magic alone
	f.Add([]byte{0xfd, 0x0c, 0x01}) // magic + version, truncated header

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := NewReader(bytes.NewReader(stream), 0)
		for i := 0; ; i++ {
			if _, err := r.Read(); err != nil {
				break
			}
			// headerLen is 8: a stream of N bytes cannot hold more than
			// N/8 records, so more Reads than that means no progress.
			if i > len(stream)/8+1 {
				t.Fatalf("Read returned more records than the stream can hold (%d bytes)", len(stream))
			}
		}
	})
}

// FuzzReplayHintRoundTrip drives the extended replay framing: any
// (dpid, inPort, hint, frame) must round-trip bit-exactly through
// WriteReplayHint and the Reader, a zero hint must stay byte-identical
// to the legacy hint-less framing (backward compatibility with peers
// that predate the hint), and a non-zero hint must survive the trip.
func FuzzReplayHintRoundTrip(f *testing.F) {
	f.Add(uint64(0x42), uint16(3), uint8(0), []byte("0123456789abcdef"))
	f.Add(uint64(0x42), uint16(3), uint8(1), []byte("0123456789abcdef"))
	f.Add(uint64(1), uint16(0), uint8(2), []byte{})
	f.Add(uint64(0xffffffffffffffff), uint16(0xffff), uint8(0xff), []byte{0x00})

	f.Fuzz(func(t *testing.T, dpid uint64, inPort uint16, hint uint8, frame []byte) {
		if len(frame)+11 > MaxPayload {
			t.Skip()
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteReplayHint(dpid, inPort, hint, frame); err != nil {
			t.Fatal(err)
		}

		if hint == 0 {
			// Compatibility: a zero hint emits the legacy framing, byte
			// for byte.
			var legacy bytes.Buffer
			if err := Write(&legacy, Replay{DPID: dpid, InPort: inPort, Frame: frame}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), legacy.Bytes()) {
				t.Fatal("zero-hint framing differs from legacy KindReplay bytes")
			}
		}

		rec, err := NewReader(bytes.NewReader(buf.Bytes()), 0).Read()
		if err != nil {
			t.Fatal(err)
		}
		rp, ok := rec.(Replay)
		if !ok {
			t.Fatalf("decoded %T, want Replay", rec)
		}
		if rp.DPID != dpid || rp.InPort != inPort || rp.Hint != hint {
			t.Fatalf("round trip (%d, %d, %d) != (%d, %d, %d)",
				rp.DPID, rp.InPort, rp.Hint, dpid, inPort, hint)
		}
		if !bytes.Equal(rp.Frame, frame) {
			t.Fatal("frame bytes corrupted in round trip")
		}
	})
}

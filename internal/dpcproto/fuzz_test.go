package dpcproto

import (
	"bytes"
	"testing"
)

// FuzzRead drives the sideband wire decoder with coverage-guided byte
// streams. Invariants: Read never panics, never spins (every call makes
// progress or errors), and a stream the writer produced round-trips.
func FuzzRead(f *testing.F) {
	// Seed corpus: each record kind alone and a mixed stream, written by
	// the real writer so the fuzzer starts on valid framing.
	record := func(recs ...Record) []byte {
		var buf bytes.Buffer
		for _, r := range recs {
			if err := Write(&buf, r); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add(record(Replay{DPID: 0x42, InPort: 3, Frame: []byte("0123456789abcdef")}))
	f.Add(record(Rate{PPS: 125.5}))
	f.Add(record(Stats{Backlog: 7, Enqueued: 100, Emitted: 90, Dropped: 3}))
	f.Add(record(
		Replay{DPID: 1, InPort: 1, Frame: make([]byte, 64)},
		Rate{PPS: 10},
		Stats{},
		Replay{DPID: 2, InPort: 2, Frame: []byte{0xff}},
	))
	f.Add([]byte{})
	f.Add([]byte{0xfd, 0x0c})       // magic alone
	f.Add([]byte{0xfd, 0x0c, 0x01}) // magic + version, truncated header

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := NewReader(bytes.NewReader(stream), 0)
		for i := 0; ; i++ {
			if _, err := r.Read(); err != nil {
				break
			}
			// headerLen is 8: a stream of N bytes cannot hold more than
			// N/8 records, so more Reads than that means no progress.
			if i > len(stream)/8+1 {
				t.Fatalf("Read returned more records than the stream can hold (%d bytes)", len(stream))
			}
		}
	})
}

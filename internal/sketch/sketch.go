// Package sketch provides the streaming traffic-analysis substrate for
// attack attribution: a count-min sketch for per-source frequency
// estimates over sampled packet_in headers, and a space-saving summary
// for the exact heavy-hitter candidates. Both are sized in constants,
// allocation-free on their hot paths (Update/Estimate/Observe), and
// support the multi-switch aggregation pattern — each protected switch
// (or cache box) keeps a local sketch, and a coordinator periodically
// Snapshots and Merges them.
//
// Counters are updated and read with atomics, so a telemetry scrape or a
// snapshot taken from another goroutine never blocks the packet path and
// never tears a 64-bit read. Periodic Decay halves every counter, giving
// the estimates an exponential horizon so a source that stops attacking
// ages out instead of staying blamed forever.
package sketch

import (
	"fmt"
	"math"
	"sync/atomic"
)

// splitmix64 is the avalanche permutation of the SplitMix64 generator —
// a cheap, statistically solid 64-bit mixer (Steele et al.). Each sketch
// row keys it with its own seed, giving pairwise-independent-enough row
// hashes without carrying hash state around.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 mixes an arbitrary 64-bit value into a well-distributed key.
func Hash64(x uint64) uint64 { return splitmix64(x) }

// CountMin is a count-min sketch: rows × cols of counters, each row
// hashed with its own seed. Estimate returns the minimum over the rows,
// an upper bound on the true count whose error shrinks with cols.
type CountMin struct {
	rows, cols int
	seeds      []uint64
	counts     []uint64 // rows*cols, accessed atomically
	total      uint64   // sum of all Update deltas, accessed atomically
}

// NewCountMin builds a rows × cols sketch with per-row hash seeds
// derived from seed. rows and cols must be positive; cols is rounded up
// to a power of two so the column index is a mask, not a modulo.
func NewCountMin(rows, cols int, seed uint64) *CountMin {
	if rows <= 0 {
		rows = 4
	}
	if cols <= 0 {
		cols = 1024
	}
	// Round cols up to a power of two.
	c := 1
	for c < cols {
		c <<= 1
	}
	s := &CountMin{
		rows:   rows,
		cols:   c,
		seeds:  make([]uint64, rows),
		counts: make([]uint64, rows*c),
	}
	for i := range s.seeds {
		seed = splitmix64(seed)
		s.seeds[i] = seed
	}
	return s
}

// Rows returns the sketch depth.
func (s *CountMin) Rows() int { return s.rows }

// Cols returns the (power-of-two) sketch width.
func (s *CountMin) Cols() int { return s.cols }

// Update adds delta to key's counters. Allocation-free and safe to call
// concurrently with Estimate, Snapshot, and a telemetry scrape.
func (s *CountMin) Update(key uint64, delta uint64) {
	mask := uint64(s.cols - 1)
	for r := 0; r < s.rows; r++ {
		i := r*s.cols + int(splitmix64(key^s.seeds[r])&mask)
		atomic.AddUint64(&s.counts[i], delta)
	}
	atomic.AddUint64(&s.total, delta)
}

// Estimate returns the count-min upper bound on key's total. It never
// underestimates (modulo concurrent Decay) and is allocation-free.
func (s *CountMin) Estimate(key uint64) uint64 {
	mask := uint64(s.cols - 1)
	min := uint64(math.MaxUint64)
	for r := 0; r < s.rows; r++ {
		i := r*s.cols + int(splitmix64(key^s.seeds[r])&mask)
		if v := atomic.LoadUint64(&s.counts[i]); v < min {
			min = v
		}
	}
	return min
}

// Total returns the sum of all deltas observed (the stream length under
// the current decay horizon).
func (s *CountMin) Total() uint64 { return atomic.LoadUint64(&s.total) }

// Decay halves every counter and the total, giving estimates an
// exponential forgetting horizon. Concurrent Updates may land between
// the load and store of a cell and lose at most their own delta — an
// acceptable error source for a structure that is itself approximate.
func (s *CountMin) Decay() {
	for i := range s.counts {
		for {
			v := atomic.LoadUint64(&s.counts[i])
			if atomic.CompareAndSwapUint64(&s.counts[i], v, v/2) {
				break
			}
		}
	}
	for {
		v := atomic.LoadUint64(&s.total)
		if atomic.CompareAndSwapUint64(&s.total, v, v/2) {
			break
		}
	}
}

// Reset zeroes every counter.
func (s *CountMin) Reset() {
	for i := range s.counts {
		atomic.StoreUint64(&s.counts[i], 0)
	}
	atomic.StoreUint64(&s.total, 0)
}

// Compatible reports whether two sketches share dimensions and seeds, so
// their cells line up for Merge.
func (s *CountMin) Compatible(o *CountMin) bool {
	if s.rows != o.rows || s.cols != o.cols {
		return false
	}
	for i := range s.seeds {
		if s.seeds[i] != o.seeds[i] {
			return false
		}
	}
	return true
}

// Snapshot copies the sketch into dst (allocated when nil or
// incompatible) and returns it. The copy is cell-atomic: each counter is
// read with an atomic load, so a snapshot taken mid-Update is internally
// consistent per cell even if cells disagree about in-flight packets.
func (s *CountMin) Snapshot(dst *CountMin) *CountMin {
	if dst == nil || !s.Compatible(dst) {
		dst = &CountMin{
			rows:   s.rows,
			cols:   s.cols,
			seeds:  append([]uint64(nil), s.seeds...),
			counts: make([]uint64, len(s.counts)),
		}
	}
	for i := range s.counts {
		dst.counts[i] = atomic.LoadUint64(&s.counts[i])
	}
	dst.total = atomic.LoadUint64(&s.total)
	return dst
}

// Merge adds other's cells into s — the multi-switch aggregation step.
// The sketches must be Compatible (same dimensions and seeds), or the
// merged estimates would be meaningless.
func (s *CountMin) Merge(other *CountMin) error {
	if !s.Compatible(other) {
		return fmt.Errorf("sketch: merge of incompatible sketches (%dx%d vs %dx%d)",
			s.rows, s.cols, other.rows, other.cols)
	}
	for i := range s.counts {
		atomic.AddUint64(&s.counts[i], atomic.LoadUint64(&other.counts[i]))
	}
	atomic.AddUint64(&s.total, atomic.LoadUint64(&other.total))
	return nil
}

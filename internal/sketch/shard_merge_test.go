package sketch

import (
	"math/rand"
	"testing"
)

// TestShardedMergeInvariance is the engine's correctness contract for
// per-shard sketches: partitioning a stream across any number of
// shard-local count-min sketches (same geometry and seed) and merging
// them must reproduce the single-sketch cells exactly — identical
// Estimate for every key and identical Total — regardless of how the
// stream was partitioned.
func TestShardedMergeInvariance(t *testing.T) {
	const (
		rows = 4
		cols = 256
		seed = 0xF100D6
		n    = 5000
	)
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		rng := rand.New(rand.NewSource(99))
		single := NewCountMin(rows, cols, seed)
		parts := make([]*CountMin, shards)
		for i := range parts {
			parts[i] = NewCountMin(rows, cols, seed)
		}
		keys := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			// Zipf-ish mix: one heavy key over a long benign tail.
			k := uint64(42)
			if rng.Intn(4) != 0 {
				k = uint64(rng.Intn(512)) + 1000
			}
			keys = append(keys, k)
			single.Update(k, 1)
			// Round-robin partition: the invariant must hold for any
			// split, not just the engine's by-port one.
			parts[i%shards].Update(k, 1)
		}

		merged := NewCountMin(rows, cols, seed)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatalf("shards=%d: merge: %v", shards, err)
			}
		}
		if merged.Total() != single.Total() {
			t.Fatalf("shards=%d: Total %d != %d", shards, merged.Total(), single.Total())
		}
		for _, k := range keys {
			if got, want := merged.Estimate(k), single.Estimate(k); got != want {
				t.Fatalf("shards=%d: Estimate(%d) = %d, want %d", shards, k, got, want)
			}
		}
	}
}

// TestShardedHeavyHitterAbsorb pins the space-saving half of the
// window-boundary merge: with capacity above the distinct-key count the
// summary is exact, so absorbing shard-local summaries into a shared one
// must yield true counts and rank the heavy key first.
func TestShardedHeavyHitterAbsorb(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(7))
	truth := make(map[uint64]uint64)
	locals := make([]*SpaceSavingLocal, shards)
	for i := range locals {
		locals[i] = NewSpaceSavingLocal(1024)
	}
	for i := 0; i < 4000; i++ {
		k := uint64(42)
		if rng.Intn(3) != 0 {
			k = uint64(rng.Intn(100)) + 1000
		}
		truth[k]++
		locals[i%shards].Observe(k, 1)
	}

	shared := NewSpaceSaving(1024)
	for _, l := range locals {
		shared.AbsorbLocal(l)
		if l.Len() != 0 {
			t.Fatal("AbsorbLocal must reset the local summary")
		}
	}
	top := shared.Top(nil)
	if len(top) != len(truth) {
		t.Fatalf("tracked %d keys, want %d", len(top), len(truth))
	}
	if top[0].Key != 42 {
		t.Fatalf("heavy key not first: %+v", top[0])
	}
	for _, e := range top {
		if e.Count != truth[e.Key] || e.Err != 0 {
			t.Fatalf("key %d: count %d err %d, want %d err 0", e.Key, e.Count, e.Err, truth[e.Key])
		}
	}
}

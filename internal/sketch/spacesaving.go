package sketch

import (
	"sort"
	"sync"
)

// Entry is one heavy-hitter candidate: its key, the (over)estimated
// count, and the maximum overestimation error inherited from the slot it
// evicted.
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// ssCore is the unlocked Metwally et al. stream-summary shared by the
// mutex-guarded SpaceSaving and the single-goroutine SpaceSavingLocal:
// it tracks at most capacity candidate keys, replacing the minimum-count
// slot when a new key arrives, so every key whose true frequency exceeds
// N/capacity is guaranteed to be present. observe is O(1) amortised for
// tracked keys and O(capacity) on eviction.
type ssCore struct {
	cap   int
	slots []Entry
	idx   map[uint64]int // key -> slot index
}

func newSSCore(capacity int) ssCore {
	if capacity <= 0 {
		capacity = 64
	}
	return ssCore{
		cap:   capacity,
		slots: make([]Entry, 0, capacity),
		idx:   make(map[uint64]int, capacity*2),
	}
}

func (t *ssCore) observe(key uint64, inc uint64) {
	if i, ok := t.idx[key]; ok {
		t.slots[i].Count += inc
		return
	}
	if len(t.slots) < t.cap {
		t.idx[key] = len(t.slots)
		t.slots = append(t.slots, Entry{Key: key, Count: inc})
		return
	}
	// Evict the minimum-count slot (the evicted slot's count becomes the
	// new key's error bound, per the algorithm).
	min := 0
	for i := 1; i < len(t.slots); i++ {
		if t.slots[i].Count < t.slots[min].Count {
			min = i
		}
	}
	old := t.slots[min]
	delete(t.idx, old.Key)
	t.idx[key] = min
	t.slots[min] = Entry{Key: key, Count: old.Count + inc, Err: old.Count}
}

func (t *ssCore) count(key uint64) uint64 {
	if i, ok := t.idx[key]; ok {
		return t.slots[i].Count
	}
	return 0
}

func (t *ssCore) decay() {
	keep := t.slots[:0]
	for _, e := range t.slots {
		e.Count /= 2
		e.Err /= 2
		if e.Count > 0 {
			keep = append(keep, e)
		} else {
			delete(t.idx, e.Key)
		}
	}
	t.slots = keep
	for i, e := range t.slots {
		t.idx[e.Key] = i
	}
}

func (t *ssCore) reset() {
	t.slots = t.slots[:0]
	for k := range t.idx {
		delete(t.idx, k)
	}
}

// SpaceSaving is the shared stream-summary: the core guarded by a mutex
// so Top can be called from a telemetry scrape while a packet path
// Observes.
type SpaceSaving struct {
	mu sync.Mutex
	c  ssCore
}

// NewSpaceSaving builds a summary over at most capacity keys.
func NewSpaceSaving(capacity int) *SpaceSaving {
	return &SpaceSaving{c: newSSCore(capacity)}
}

// Observe credits inc to key, evicting the current minimum slot if the
// summary is full and key is untracked.
func (t *SpaceSaving) Observe(key uint64, inc uint64) {
	t.mu.Lock()
	t.c.observe(key, inc)
	t.mu.Unlock()
}

// Count returns the tracked (over)estimate for key, or 0 when untracked.
func (t *SpaceSaving) Count(key uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.c.count(key)
}

// Len returns how many keys are currently tracked.
func (t *SpaceSaving) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.c.slots)
}

// Top appends the tracked entries, highest count first, to dst and
// returns it. Pass a reused slice to avoid allocation.
func (t *SpaceSaving) Top(dst []Entry) []Entry {
	t.mu.Lock()
	dst = append(dst, t.c.slots...)
	t.mu.Unlock()
	sort.Slice(dst, func(i, j int) bool { return dst[i].Count > dst[j].Count })
	return dst
}

// Decay halves every slot's count and error, matching the count-min
// sketch's exponential horizon so the two structures age together.
// Slots decayed to zero are dropped.
func (t *SpaceSaving) Decay() {
	t.mu.Lock()
	t.c.decay()
	t.mu.Unlock()
}

// Reset drops every tracked key.
func (t *SpaceSaving) Reset() {
	t.mu.Lock()
	t.c.reset()
	t.mu.Unlock()
}

// Merge folds other's entries into t by Observing each one — the
// standard space-saving merge bound: the result tracks every key heavy
// in the union within the combined error.
func (t *SpaceSaving) Merge(other *SpaceSaving) {
	other.mu.Lock()
	entries := append([]Entry(nil), other.c.slots...)
	other.mu.Unlock()
	for _, e := range entries {
		t.Observe(e.Key, e.Count)
	}
}

// AbsorbLocal folds a shard-local summary into t under one lock
// acquisition and resets the local — the window-boundary merge of the
// run-to-completion engine. The caller must be o's owner goroutine.
func (t *SpaceSaving) AbsorbLocal(o *SpaceSavingLocal) {
	t.mu.Lock()
	for _, e := range o.c.slots {
		t.c.observe(e.Key, e.Count)
	}
	t.mu.Unlock()
	o.c.reset()
}

// SpaceSavingLocal is the unlocked stream-summary for a run-to-completion
// shard: exactly one goroutine may touch it, so Observe takes no mutex
// and performs no allocation once the slot array is full. Fold it into a
// shared SpaceSaving at window boundaries with AbsorbLocal.
type SpaceSavingLocal struct {
	c ssCore
}

// NewSpaceSavingLocal builds an unlocked summary over at most capacity
// keys.
func NewSpaceSavingLocal(capacity int) *SpaceSavingLocal {
	return &SpaceSavingLocal{c: newSSCore(capacity)}
}

// Observe credits inc to key. Owner goroutine only.
func (t *SpaceSavingLocal) Observe(key uint64, inc uint64) { t.c.observe(key, inc) }

// Count returns the tracked (over)estimate for key, or 0 when untracked.
func (t *SpaceSavingLocal) Count(key uint64) uint64 { return t.c.count(key) }

// Len returns how many keys are currently tracked.
func (t *SpaceSavingLocal) Len() int { return len(t.c.slots) }

// Entries returns the live slot slice in arbitrary order — a zero-copy
// view that is invalidated by the next Observe/Decay/Reset. Owner
// goroutine only.
func (t *SpaceSavingLocal) Entries() []Entry { return t.c.slots }

// Decay halves every slot's count and error, dropping zeroed slots.
func (t *SpaceSavingLocal) Decay() { t.c.decay() }

// Reset drops every tracked key.
func (t *SpaceSavingLocal) Reset() { t.c.reset() }

package sketch

import (
	"sort"
	"sync"
)

// Entry is one heavy-hitter candidate: its key, the (over)estimated
// count, and the maximum overestimation error inherited from the slot it
// evicted.
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// SpaceSaving is the Metwally et al. stream-summary: it tracks at most
// capacity candidate keys, replacing the minimum-count slot when a new
// key arrives, so every key whose true frequency exceeds N/capacity is
// guaranteed to be present. Observe is O(1) amortised for tracked keys
// and O(capacity) on eviction; the structure is guarded by a mutex so
// Top can be called from a telemetry scrape while a packet path
// Observes.
type SpaceSaving struct {
	mu    sync.Mutex
	cap   int
	slots []Entry
	idx   map[uint64]int // key -> slot index
}

// NewSpaceSaving builds a summary over at most capacity keys.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		capacity = 64
	}
	return &SpaceSaving{
		cap:   capacity,
		slots: make([]Entry, 0, capacity),
		idx:   make(map[uint64]int, capacity*2),
	}
}

// Observe credits inc to key, evicting the current minimum slot if the
// summary is full and key is untracked (the evicted slot's count becomes
// the new key's error bound, per the algorithm).
func (t *SpaceSaving) Observe(key uint64, inc uint64) {
	t.mu.Lock()
	if i, ok := t.idx[key]; ok {
		t.slots[i].Count += inc
		t.mu.Unlock()
		return
	}
	if len(t.slots) < t.cap {
		t.idx[key] = len(t.slots)
		t.slots = append(t.slots, Entry{Key: key, Count: inc})
		t.mu.Unlock()
		return
	}
	// Evict the minimum-count slot.
	min := 0
	for i := 1; i < len(t.slots); i++ {
		if t.slots[i].Count < t.slots[min].Count {
			min = i
		}
	}
	old := t.slots[min]
	delete(t.idx, old.Key)
	t.idx[key] = min
	t.slots[min] = Entry{Key: key, Count: old.Count + inc, Err: old.Count}
	t.mu.Unlock()
}

// Count returns the tracked (over)estimate for key, or 0 when untracked.
func (t *SpaceSaving) Count(key uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.idx[key]; ok {
		return t.slots[i].Count
	}
	return 0
}

// Len returns how many keys are currently tracked.
func (t *SpaceSaving) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slots)
}

// Top appends the tracked entries, highest count first, to dst and
// returns it. Pass a reused slice to avoid allocation.
func (t *SpaceSaving) Top(dst []Entry) []Entry {
	t.mu.Lock()
	dst = append(dst, t.slots...)
	t.mu.Unlock()
	sort.Slice(dst, func(i, j int) bool { return dst[i].Count > dst[j].Count })
	return dst
}

// Decay halves every slot's count and error, matching the count-min
// sketch's exponential horizon so the two structures age together.
// Slots decayed to zero are dropped.
func (t *SpaceSaving) Decay() {
	t.mu.Lock()
	keep := t.slots[:0]
	for _, e := range t.slots {
		e.Count /= 2
		e.Err /= 2
		if e.Count > 0 {
			keep = append(keep, e)
		} else {
			delete(t.idx, e.Key)
		}
	}
	t.slots = keep
	for i, e := range t.slots {
		t.idx[e.Key] = i
	}
	t.mu.Unlock()
}

// Reset drops every tracked key.
func (t *SpaceSaving) Reset() {
	t.mu.Lock()
	t.slots = t.slots[:0]
	for k := range t.idx {
		delete(t.idx, k)
	}
	t.mu.Unlock()
}

// Merge folds other's entries into t by Observing each one — the
// standard space-saving merge bound: the result tracks every key heavy
// in the union within the combined error.
func (t *SpaceSaving) Merge(other *SpaceSaving) {
	other.mu.Lock()
	entries := append([]Entry(nil), other.slots...)
	other.mu.Unlock()
	for _, e := range entries {
		t.Observe(e.Key, e.Count)
	}
}

package sketch

import "testing"

// The attribution data path updates a sketch per sampled packet_in, so
// Update and Estimate carry a 0 allocs/op budget (gated in CI via
// BENCH_5.json).

func BenchmarkCountMinUpdate(b *testing.B) {
	s := NewCountMin(4, 2048, 0xF100D)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i), 1)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	s := NewCountMin(4, 2048, 0xF100D)
	for i := 0; i < 4096; i++ {
		s.Update(uint64(i), uint64(i%7+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate(uint64(i))
	}
}

func BenchmarkSpaceSavingObserveTracked(b *testing.B) {
	ss := NewSpaceSaving(64)
	for i := 0; i < 64; i++ {
		ss.Observe(uint64(i), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Observe(uint64(i%64), 1)
	}
}

func BenchmarkSpaceSavingObserveChurn(b *testing.B) {
	ss := NewSpaceSaving(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Observe(uint64(i), 1)
	}
}

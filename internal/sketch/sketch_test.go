package sketch

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	s := NewCountMin(4, 512, 0xF100D)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(300))
		s.Update(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := s.Estimate(k); got < want {
			t.Fatalf("Estimate(%d) = %d, below true count %d", k, got, want)
		}
	}
	if s.Total() != 20000 {
		t.Fatalf("Total = %d, want 20000", s.Total())
	}
}

func TestCountMinHeavyHitterAccuracy(t *testing.T) {
	s := NewCountMin(4, 2048, 42)
	// One elephant among uniform mice.
	rng := rand.New(rand.NewSource(2))
	const elephant = uint64(0xE1E)
	for i := 0; i < 10000; i++ {
		s.Update(elephant, 1)
		s.Update(uint64(rng.Int63()), 1)
	}
	est := s.Estimate(elephant)
	if est < 10000 || est > 10000+10000/10 {
		t.Fatalf("elephant estimate %d not within 10%% over true 10000", est)
	}
}

func TestCountMinDecay(t *testing.T) {
	s := NewCountMin(2, 64, 7)
	s.Update(1, 1000)
	s.Decay()
	if got := s.Estimate(1); got != 500 {
		t.Fatalf("after one decay: Estimate = %d, want 500", got)
	}
	if s.Total() != 500 {
		t.Fatalf("after one decay: Total = %d, want 500", s.Total())
	}
}

func TestCountMinSnapshotMerge(t *testing.T) {
	a := NewCountMin(4, 256, 99)
	b := NewCountMin(4, 256, 99) // same seed: compatible
	a.Update(10, 5)
	b.Update(10, 7)
	b.Update(11, 3)

	snap := b.Snapshot(nil)
	if err := a.Merge(snap); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(10); got < 12 {
		t.Fatalf("merged Estimate(10) = %d, want >= 12", got)
	}
	if got := a.Estimate(11); got < 3 {
		t.Fatalf("merged Estimate(11) = %d, want >= 3", got)
	}
	if a.Total() != 15 {
		t.Fatalf("merged Total = %d, want 15", a.Total())
	}

	// Reusing a compatible destination must not allocate a new one.
	again := b.Snapshot(snap)
	if again != snap {
		t.Fatal("Snapshot allocated a new sketch for a compatible destination")
	}

	incompatible := NewCountMin(4, 256, 100)
	if err := a.Merge(incompatible); err == nil {
		t.Fatal("Merge of differently-seeded sketches must fail")
	}
}

func TestCountMinConcurrentUpdateSnapshot(t *testing.T) {
	s := NewCountMin(4, 256, 3)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Update(uint64(i%97), 1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		var dst *CountMin
		for i := 0; i < 200; i++ {
			dst = s.Snapshot(dst)
			s.Estimate(uint64(i % 97))
			if i%50 == 0 {
				s.Decay()
			}
		}
		close(stop)
	}()
	wg.Wait()
}

func TestSpaceSavingGuarantee(t *testing.T) {
	ss := NewSpaceSaving(8)
	// Two heavies over a churn of uniques: both must be tracked.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		ss.Observe(0xAAA, 1)
		ss.Observe(0xBBB, 1)
		ss.Observe(uint64(rng.Int63()), 1)
	}
	top := ss.Top(nil)
	if len(top) == 0 || top[0].Count < 5000 {
		t.Fatalf("top-1 count %v, want >= 5000", top)
	}
	found := map[uint64]bool{}
	for _, e := range top[:2] {
		found[e.Key] = true
	}
	if !found[0xAAA] || !found[0xBBB] {
		t.Fatalf("heavies missing from top-2: %v", top[:2])
	}
	// The guaranteed-count lower bound (Count - Err) must dominate the
	// churn keys' possible true counts.
	if top[0].Count-top[0].Err < 4000 {
		t.Fatalf("lower bound %d too weak", top[0].Count-top[0].Err)
	}
}

func TestSpaceSavingDecayDropsCold(t *testing.T) {
	ss := NewSpaceSaving(4)
	ss.Observe(1, 100)
	ss.Observe(2, 1)
	ss.Decay() // 2 -> 0, dropped
	if ss.Count(2) != 0 {
		t.Fatalf("cold key survived decay with count %d", ss.Count(2))
	}
	if ss.Count(1) != 50 {
		t.Fatalf("hot key decayed to %d, want 50", ss.Count(1))
	}
	if ss.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ss.Len())
	}
	// Index must still be consistent after compaction.
	ss.Observe(1, 1)
	if ss.Count(1) != 51 {
		t.Fatalf("post-decay Observe landed wrong: %d", ss.Count(1))
	}
}

func TestSpaceSavingMerge(t *testing.T) {
	a := NewSpaceSaving(8)
	b := NewSpaceSaving(8)
	a.Observe(1, 10)
	b.Observe(1, 5)
	b.Observe(2, 3)
	a.Merge(b)
	if a.Count(1) != 15 {
		t.Fatalf("merged count(1) = %d, want 15", a.Count(1))
	}
	if a.Count(2) != 3 {
		t.Fatalf("merged count(2) = %d, want 3", a.Count(2))
	}
}

func TestSpaceSavingConcurrentObserveTop(t *testing.T) {
	ss := NewSpaceSaving(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				ss.Observe(uint64(i%31), 1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		var buf []Entry
		for i := 0; i < 200; i++ {
			buf = ss.Top(buf[:0])
			if i%50 == 0 {
				ss.Decay()
			}
		}
		close(stop)
	}()
	wg.Wait()
}

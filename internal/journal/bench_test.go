package journal

import "testing"

// BenchmarkJournalAppend is the raw hot-path append: one Record call
// into a shard recorder, with a same-goroutine periodic drain standing
// in for the cache-loop consumer (the SPSC contract permits
// producer == consumer on one goroutine). BENCH_8.json gates this at
// 0 allocs/op.
func BenchmarkJournalAppend(b *testing.B) {
	j := ForEngine(1)
	rec := j.ShardRec(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(KindSuspect, 0, 0, 1, uint16(i&63), float64(i), 120.5, 0.4)
		if i&1023 == 1023 {
			j.Drain()
		}
	}
	if j.Dropped() != 0 {
		b.Fatalf("dropped %d events", j.Dropped())
	}
}

// BenchmarkJournalAppendNil is the disabled-journal cost: the nil
// receiver fast-out that instrumented code pays when no journal is
// attached.
func BenchmarkJournalAppendNil(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(KindSuspect, 0, 0, 1, uint16(i&63), float64(i), 120.5, 0.4)
	}
}

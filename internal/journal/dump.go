// JSONL flight-recorder dump format. One JSON object per line, typed
// by a "type" field: a leading "meta" line (run identity, recorder
// layout, SLO index map, drop count, dump trigger), then "event"
// lines in the canonical (Window, Rec, Seq) order, then "violation"
// lines, then "metric" lines sorted by name. Nothing in the format
// depends on wall-clock time or map iteration order, so a seeded run
// renders byte-identically.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DumpVersion is bumped on any breaking change to the line schema.
const DumpVersion = 1

// Meta is the dump's leading line.
type Meta struct {
	Type    string   `json:"type"` // "meta"
	Version int      `json:"version"`
	Seed    int64    `json:"seed"`
	Shards  int      `json:"shards"`
	Windows int      `json:"windows"`
	Trigger string   `json:"trigger,omitempty"` // "violation" or "complete"
	SLOs    []string `json:"slos,omitempty"`    // KindSLO Aux index -> objective name
	Dropped uint64   `json:"dropped_events"`
}

// EventRecord is the wire form of Event.
type EventRecord struct {
	Type   string  `json:"type"` // "event"
	Seq    uint64  `json:"seq"`
	Window int     `json:"window"`
	Rec    int     `json:"rec"`
	Kind   string  `json:"kind"`
	Code   int     `json:"code"`
	Aux    int     `json:"aux"`
	DPID   uint64  `json:"dpid"`
	Port   int     `json:"port"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	C      float64 `json:"c"`
}

// ViolationRecord carries one soak invariant violation verbatim.
type ViolationRecord struct {
	Type      string `json:"type"` // "violation"
	Window    int    `json:"window"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// MetricRecord is one final-snapshot scalar.
type MetricRecord struct {
	Type  string  `json:"type"` // "metric"
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Dump is a parsed flight-recorder artifact.
type Dump struct {
	Meta       Meta
	Events     []Event
	Violations []ViolationRecord
	Metrics    []MetricRecord
}

// Writer renders dump lines. Construct with NewWriter, emit the meta
// line first, then events/violations/metrics, then Flush.
type Writer struct {
	bw  *bufio.Writer
	err error
}

func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

func (w *Writer) line(v any) {
	if w.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	w.err = w.bw.WriteByte('\n')
}

func (w *Writer) Meta(m Meta) {
	m.Type = "meta"
	m.Version = DumpVersion
	w.line(m)
}

func (w *Writer) Event(ev Event) {
	w.line(EventRecord{
		Type:   "event",
		Seq:    ev.Seq,
		Window: int(ev.Window),
		Rec:    int(ev.Rec),
		Kind:   ev.Kind.String(),
		Code:   int(ev.Code),
		Aux:    int(ev.Aux),
		DPID:   ev.DPID,
		Port:   int(ev.Port),
		A:      ev.A,
		B:      ev.B,
		C:      ev.C,
	})
}

func (w *Writer) Violation(window int, invariant, detail string) {
	w.line(ViolationRecord{Type: "violation", Window: window, Invariant: invariant, Detail: detail})
}

// Metrics emits the map sorted by name (determinism).
func (w *Writer) Metrics(m map[string]float64) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w.line(MetricRecord{Type: "metric", Name: n, Value: m[n]})
	}
}

func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// ReadDump parses a JSONL dump. Unknown line types are skipped
// (forward compatibility); malformed JSON is an error.
func ReadDump(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("journal dump line %d: %w", lineNo, err)
		}
		switch probe.Type {
		case "meta":
			if err := json.Unmarshal(raw, &d.Meta); err != nil {
				return nil, fmt.Errorf("journal dump line %d (meta): %w", lineNo, err)
			}
		case "event":
			var er EventRecord
			if err := json.Unmarshal(raw, &er); err != nil {
				return nil, fmt.Errorf("journal dump line %d (event): %w", lineNo, err)
			}
			k, _ := ParseKind(er.Kind)
			d.Events = append(d.Events, Event{
				Seq:    er.Seq,
				Window: int32(er.Window),
				Rec:    uint8(er.Rec),
				Kind:   k,
				Code:   uint8(er.Code),
				Aux:    uint8(er.Aux),
				Port:   uint16(er.Port),
				DPID:   er.DPID,
				A:      er.A,
				B:      er.B,
				C:      er.C,
			})
		case "violation":
			var vr ViolationRecord
			if err := json.Unmarshal(raw, &vr); err != nil {
				return nil, fmt.Errorf("journal dump line %d (violation): %w", lineNo, err)
			}
			d.Violations = append(d.Violations, vr)
		case "metric":
			var mr MetricRecord
			if err := json.Unmarshal(raw, &mr); err != nil {
				return nil, fmt.Errorf("journal dump line %d (metric): %w", lineNo, err)
			}
			d.Metrics = append(d.Metrics, mr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d.Meta.Type == "" {
		return nil, fmt.Errorf("journal dump: missing meta line")
	}
	return d, nil
}

// Explain renders a per-port evidence chain out of a dump: the
// suspect windows where CUSUM accumulated, the blame verdict with its
// excursion, the migration action, the calm run, and the heal — the
// question "why was port 7 migrated, and when did it recover?"
// answered from the artifact alone.
package journal

import (
	"fmt"
	"io"
)

// fsmNames mirrors core.FSMState numbering (1-based). Kept local so
// the journal package stays import-free of core (core records into
// the journal, not the other way round).
var fsmNames = [...]string{"?", "idle", "init", "defense", "finish", "degraded"}

func fsmName(code uint8) string {
	if int(code) < len(fsmNames) {
		return fsmNames[code]
	}
	return fmt.Sprintf("state(%d)", code)
}

var hintNames = [...]string{"none", "benign", "suspect"}

func hintName(code uint8) string {
	if int(code) < len(hintNames) {
		return hintNames[code]
	}
	return fmt.Sprintf("hint(%d)", code)
}

var sloStates = [...]string{"ok", "warn", "page"}

// SLOStateName maps a KindSLO code to its display name.
func SLOStateName(code uint8) string {
	if int(code) < len(sloStates) {
		return sloStates[code]
	}
	return fmt.Sprintf("state(%d)", code)
}

// portKinds are the kinds whose Port field names a switch port (as
// opposed to a shard id), i.e. the kinds --explain follows.
func portKind(k Kind) bool {
	switch k {
	case KindSuspect, KindBlame, KindHeal, KindMigrate, KindUnmigrate, KindVerdictFlip,
		KindTCPEvidence:
		return true
	}
	return false
}

// ipv4Name renders a KindTCPEvidence source address (stored host-order
// in the DPID slot) without pulling netpkt into the journal's import
// graph.
func ipv4Name(ip uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// FormatEvent renders one event as a stable single line of text.
func FormatEvent(ev Event) string {
	head := fmt.Sprintf("w%-4d rec=%d seq=%-5d %-12s", ev.Window, ev.Rec, ev.Seq, ev.Kind)
	switch ev.Kind {
	case KindFSM:
		return fmt.Sprintf("%s %s -> %s  rate_ewma=%.1fpps backlog=%.0f migr_rate=%.1fpps",
			head, fsmName(ev.Aux), fsmName(ev.Code), ev.A, ev.B, ev.C)
	case KindSuspect:
		return fmt.Sprintf("%s dpid=%d port=%d rate=%.1fpps ewma=%.1fpps cusum=%.0f%% of threshold",
			head, ev.DPID, ev.Port, ev.A, ev.B, ev.C*100)
	case KindBlame:
		return fmt.Sprintf("%s dpid=%d port=%d rate=%.1fpps ewma=%.1fpps excursion=%.1fpps",
			head, ev.DPID, ev.Port, ev.A, ev.B, ev.C)
	case KindHeal:
		return fmt.Sprintf("%s dpid=%d port=%d calm_windows=%.0f last_blamed_rate=%.1fpps ewma=%.1fpps",
			head, ev.DPID, ev.Port, ev.A, ev.B, ev.C)
	case KindMigrate, KindUnmigrate:
		return fmt.Sprintf("%s dpid=%d port=%d", head, ev.DPID, ev.Port)
	case KindVerdictFlip:
		return fmt.Sprintf("%s dpid=%d port=%d %s -> %s",
			head, ev.DPID, ev.Port, hintName(uint8(ev.A)), hintName(ev.Code))
	case KindWatermark:
		return fmt.Sprintf("%s backlog=%.0f", head, ev.A)
	case KindChaos:
		switch ev.Code {
		case 1:
			return head + " cache outage begins"
		case 2:
			return head + " cache outage ends"
		case 3:
			return fmt.Sprintf("%s flow churn (%.0f flows rekeyed)", head, ev.A)
		}
		return fmt.Sprintf("%s code=%d a=%.1f", head, ev.Code, ev.A)
	case KindShardFlush:
		return fmt.Sprintf("%s shard=%d processed=%.0f misses=%.0f ring_drops=%.0f",
			head, ev.Port, ev.A, ev.B, ev.C)
	case KindRingDrop:
		return fmt.Sprintf("%s port=%d cumulative_drops=%.0f", head, ev.Port, ev.A)
	case KindViolation:
		return fmt.Sprintf("%s index=%.0f", head, ev.A)
	case KindSLO:
		return fmt.Sprintf("%s objective=%d state=%s burn_short=%.2fx burn_long=%.2fx",
			head, ev.Aux, SLOStateName(ev.Code), ev.A, ev.B)
	case KindTCPCookie:
		return fmt.Sprintf("%s port=%d cumulative_synacks=%.0f", head, ev.Port, ev.A)
	case KindTCPEvidence:
		return fmt.Sprintf("%s src=%s port=%d syns=%.0f valid_acks=%.0f invalid=%.0f",
			head, ipv4Name(ev.DPID), ev.Port, ev.A, ev.B, ev.C)
	}
	return fmt.Sprintf("%s code=%d dpid=%d port=%d a=%.3f b=%.3f c=%.3f",
		head, ev.Code, ev.DPID, ev.Port, ev.A, ev.B, ev.C)
}

// Explain writes the evidence chain for one port. It walks the dump's
// events (already in canonical order), keeps the kinds whose Port
// field names a switch port, and annotates the phases: first suspect
// window, blame, migration, heal. Long suspect runs are elided in the
// middle so a slow-burn attack stays readable.
func Explain(w io.Writer, d *Dump, port uint16) error {
	var chain []Event
	for _, ev := range d.Events {
		if ev.Port == port && portKind(ev.Kind) {
			chain = append(chain, ev)
		}
	}
	if len(chain) == 0 {
		return fmt.Errorf("no decision events for port %d in this dump (try plain `fganalyze journal` to list ports)", port)
	}

	firstSuspect, blameW, migrateW, healW := -1, -1, -1, -1
	for _, ev := range chain {
		switch ev.Kind {
		case KindSuspect:
			if firstSuspect < 0 {
				firstSuspect = int(ev.Window)
			}
		case KindBlame:
			if blameW < 0 {
				blameW = int(ev.Window)
			}
		case KindMigrate:
			if migrateW < 0 {
				migrateW = int(ev.Window)
			}
		case KindHeal:
			healW = int(ev.Window)
		}
	}

	fmt.Fprintf(w, "evidence chain for port %d (%d events)\n", port, len(chain))
	phase := func(name string, win int) {
		if win >= 0 {
			fmt.Fprintf(w, "  %-14s window %d\n", name, win)
		} else {
			fmt.Fprintf(w, "  %-14s (none recorded)\n", name)
		}
	}
	phase("first suspect", firstSuspect)
	phase("blamed", blameW)
	phase("migrated", migrateW)
	phase("healed", healW)
	if blameW >= 0 && firstSuspect >= 0 {
		fmt.Fprintf(w, "  detection took %d window(s) of accumulating evidence\n", blameW-firstSuspect+1)
	}
	fmt.Fprintln(w)

	// Elide the middle of long same-kind runs (slow attacks emit one
	// suspect event per window for hundreds of windows).
	const keepHead, keepTail = 8, 4
	i := 0
	for i < len(chain) {
		j := i
		for j < len(chain) && chain[j].Kind == chain[i].Kind {
			j++
		}
		run := chain[i:j]
		if len(run) <= keepHead+keepTail+1 {
			for _, ev := range run {
				fmt.Fprintln(w, "  "+FormatEvent(ev))
			}
		} else {
			for _, ev := range run[:keepHead] {
				fmt.Fprintln(w, "  "+FormatEvent(ev))
			}
			fmt.Fprintf(w, "  ... %d more %s events elided ...\n", len(run)-keepHead-keepTail, run[0].Kind)
			for _, ev := range run[len(run)-keepTail:] {
				fmt.Fprintln(w, "  "+FormatEvent(ev))
			}
		}
		i = j
	}
	return nil
}

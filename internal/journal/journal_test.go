package journal

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestTotalOrderProperty drives concurrent producers against a
// concurrent drainer and asserts the merged-timeline contract: per
// recorder, sequence numbers are strictly increasing; across
// recorders, the merged order is window-consistent (window numbers
// never decrease along the merged slice, and within a window the
// (Rec, Seq) tiebreak holds).
func TestTotalOrderProperty(t *testing.T) {
	const shards = 4
	const perProducer = 5000
	// Ring big enough that nothing drops even if the drainer lags.
	j := New(Config{Recorders: shards, RingCapacity: 16384, Retain: perProducer + 1})
	stop := make(chan struct{})
	var drained sync.WaitGroup
	drained.Add(1)
	go func() {
		defer drained.Done()
		for {
			j.Drain()
			select {
			case <-stop:
				j.Drain()
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rec := j.Recorder(p)
			rng := rand.New(rand.NewSource(int64(p) + 1))
			for i := 0; i < perProducer; i++ {
				rec.Record(KindSuspect, 0, 0, 1, uint16(p), rng.Float64(), 0, 0)
			}
		}(p)
	}
	// A window ticker racing the producers: stamps may straddle the
	// advance, but per-recorder windows must still be monotone.
	for w := 1; w <= 50; w++ {
		j.SetWindow(w)
	}
	wg.Wait()
	close(stop)
	drained.Wait()

	if d := j.Dropped(); d != 0 {
		t.Fatalf("dropped %d events with an oversized ring", d)
	}
	evs := j.Events()
	if len(evs) != shards*perProducer {
		t.Fatalf("retained %d events, want %d", len(evs), shards*perProducer)
	}

	lastSeq := map[uint8]uint64{}
	lastWin := map[uint8]int32{}
	for i, ev := range evs {
		if ev.Seq <= lastSeq[ev.Rec] {
			t.Fatalf("event %d: recorder %d seq %d not strictly increasing (prev %d)",
				i, ev.Rec, ev.Seq, lastSeq[ev.Rec])
		}
		lastSeq[ev.Rec] = ev.Seq
		if ev.Window < lastWin[ev.Rec] {
			t.Fatalf("event %d: recorder %d window went backwards (%d after %d)",
				i, ev.Rec, ev.Window, lastWin[ev.Rec])
		}
		lastWin[ev.Rec] = ev.Window
		if i > 0 {
			prev := evs[i-1]
			if ev.Window < prev.Window {
				t.Fatalf("merged order: window %d after %d at index %d", ev.Window, prev.Window, i)
			}
			if ev.Window == prev.Window && ev.Rec < prev.Rec {
				t.Fatalf("merged order: rec %d after %d within window %d", ev.Rec, prev.Rec, ev.Window)
			}
			if ev.Window == prev.Window && ev.Rec == prev.Rec && ev.Seq < prev.Seq {
				t.Fatalf("merged order: seq %d after %d within (window %d, rec %d)",
					ev.Seq, prev.Seq, ev.Window, ev.Rec)
			}
		}
	}
}

// TestRetentionEvictsOldestFIFO: the flight recorder keeps the most
// recent Retain events per recorder regardless of drain timing.
func TestRetentionEvictsOldestFIFO(t *testing.T) {
	j := New(Config{Recorders: 1, RingCapacity: 64, Retain: 10})
	rec := j.Recorder(0)
	for i := 0; i < 35; i++ {
		rec.Record(KindBlame, 0, 0, 1, 7, float64(i), 0, 0)
		if i%3 == 0 { // drain at awkward times on purpose
			j.Drain()
		}
	}
	j.Drain()
	evs := j.Events()
	if len(evs) != 10 {
		t.Fatalf("retained %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(26 + i); ev.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want %d (oldest must be evicted first)", i, ev.Seq, want)
		}
	}
}

// TestRingOverflowCountsDrops: an undrained ring rejects the excess
// and the journal reports exactly how many events were lost.
func TestRingOverflowCountsDrops(t *testing.T) {
	j := New(Config{Recorders: 1, RingCapacity: 16, Retain: 64})
	rec := j.Recorder(0)
	for i := 0; i < 100; i++ {
		rec.Record(KindRingDrop, 0, 0, 1, 1, 0, 0, 0)
	}
	if d := j.Dropped(); d != 100-16 {
		t.Fatalf("Dropped() = %d, want %d", d, 100-16)
	}
	j.Drain()
	if got := len(j.Events()); got != 16 {
		t.Fatalf("retained %d, want 16", got)
	}
}

// TestNilSafety: every Journal/Recorder method must be a no-op on nil
// so instrumented hot paths stay branch-free.
func TestNilSafety(t *testing.T) {
	var j *Journal
	var r *Recorder
	r.Record(KindBlame, 0, 0, 1, 1, 0, 0, 0)
	j.SetWindow(3)
	j.AdvanceWindow()
	if j.Drain() != 0 || j.Dropped() != 0 || j.Events() != nil || j.Window() != 0 {
		t.Fatal("nil journal must be inert")
	}
	if j.ShardRec(0) != nil || j.CacheRec() != nil || j.AttribRec() != nil || j.ControlRec() != nil || j.Recorder(0) != nil {
		t.Fatal("nil journal accessors must return nil recorders")
	}
	// Flat journals have no engine layout.
	flat := New(Config{Recorders: 2})
	if flat.ShardRec(0) != nil || flat.CacheRec() != nil {
		t.Fatal("flat journal must not expose engine-layout recorders")
	}
	// Engine layout out-of-range shard.
	eng := ForEngine(2)
	if eng.ShardRec(2) != nil || eng.ShardRec(-1) != nil {
		t.Fatal("out-of-range ShardRec must be nil")
	}
}

// TestDumpRoundTrip: write → read preserves meta, events, violations
// and metrics, and rendering the same dump twice is byte-identical.
func TestDumpRoundTrip(t *testing.T) {
	j := ForEngine(2)
	j.SetWindow(3)
	j.ShardRec(0).Record(KindShardFlush, 0, 0, 1, 0, 100, 2, 0)
	j.AttribRec().Record(KindSuspect, 0, 0, 1, 9, 5000, 120.5, 0.6)
	j.AttribRec().Record(KindBlame, 0, 0, 1, 9, 6000, 121, 4800)
	j.SetWindow(4)
	j.ControlRec().Record(KindMigrate, 0, 0, 1, 9, 0, 0, 0)
	j.Drain()

	render := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Meta(Meta{Seed: 42, Shards: 2, Windows: 5, Trigger: "violation", SLOs: []string{"benign-loss"}, Dropped: j.Dropped()})
		for _, ev := range j.Events() {
			w.Event(ev)
		}
		w.Violation(4, "benign-loss", "loss 0.02 > ceiling 0.01")
		w.Metrics(map[string]float64{"pps": 1e6, "benign_loss": 0.02, "backlog": 17})
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same journal differ")
	}

	d, err := ReadDump(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Seed != 42 || d.Meta.Shards != 2 || d.Meta.Trigger != "violation" || d.Meta.Version != DumpVersion {
		t.Fatalf("meta mismatch: %+v", d.Meta)
	}
	if len(d.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(d.Events))
	}
	if d.Events[1].Kind != KindSuspect || d.Events[1].Port != 9 || d.Events[1].B != 120.5 {
		t.Fatalf("event payload mangled: %+v", d.Events[1])
	}
	if len(d.Violations) != 1 || d.Violations[0].Invariant != "benign-loss" {
		t.Fatalf("violations mangled: %+v", d.Violations)
	}
	if len(d.Metrics) != 3 || d.Metrics[0].Name != "backlog" {
		t.Fatalf("metrics must be name-sorted: %+v", d.Metrics)
	}

	var out bytes.Buffer
	if err := Explain(&out, d, 9); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"first suspect", "window 3", "blame", "migrate"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("explain output missing %q:\n%s", want, s)
		}
	}
	if err := Explain(&out, d, 55); err == nil {
		t.Fatal("explain of an unknown port must error")
	}
}

// TestKindNamesRoundTrip pins the closed kind set.
func TestKindNamesRoundTrip(t *testing.T) {
	for k := KindNone; k <= KindSLO; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("ParseKind must reject unknown names")
	}
}

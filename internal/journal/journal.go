// Package journal is the decision-forensics layer: a sharded,
// lock-free structured event journal that records *why* the pipeline
// did what it did — FSM transitions with their triggering scores,
// attrib blame/heal verdicts with the EWMA/CUSUM evidence that fired
// them, selective migrate/unmigrate actions, dpcache verdict flips and
// backlog watermarks, chaos faults — cheap enough to stay on at
// million-pps rates.
//
// Architecture mirrors the rtc engine it instruments: every producer
// goroutine (each rtc shard, the cache stage, the attribution roll,
// the controller/harness) owns a private Recorder backed by an SPSC
// ring from internal/spsc, so the hot-path append is a couple of
// atomic loads plus a ring push — no locks, no allocations. A single
// consumer (the engine's cache loop while running, the harness after
// shutdown) drains every ring into per-recorder bounded retention
// buffers: the flight recorder. Because retention is per-recorder
// FIFO, the set of retained events is independent of *when* the
// consumer drained, which is what makes same-seed dumps byte-identical.
//
// Total order: every event is stamped with the producer's private
// monotonic sequence number and the current window number (a shared
// atomic the harness/engine advances at window barriers). Events merge
// into one timeline ordered by (Window, Rec, Seq): within a window,
// events from different recorders are causally concurrent, and the
// (Rec, Seq) tiebreak is the deterministic convention that makes the
// merged order reproducible.
package journal

import (
	"sort"
	"sync/atomic"

	"floodguard/internal/spsc"
)

// Kind classifies a decision event. The set is closed and small on
// purpose: every kind maps onto one concrete decision or item of
// evidence in the pipeline, and the A/B/C payload fields are
// documented per kind (see the comments below and DESIGN.md §14).
type Kind uint8

const (
	KindNone Kind = iota

	// KindFSM: guard FSM transition. Code = to-state, Aux =
	// from-state (core.FSMState numbering), A = packet_in rate EWMA
	// (pps), B = cache backlog, C = migration rate (pps).
	KindFSM

	// KindSuspect: a port's CUSUM is accumulating but has not crossed
	// the blame threshold — the pre-blame evidence chain. A = window
	// rate (pps), B = EWMA baseline, C = cusum/threshold fraction.
	KindSuspect

	// KindBlame: CUSUM crossed the threshold; the port is now blamed.
	// A = window rate (pps), B = EWMA baseline, C = excursion
	// (rate - ewma - drift).
	KindBlame

	// KindHeal: the port completed its calm-window run and is
	// un-blamed. A = calm windows observed, B = last rate seen while
	// blamed-and-hot, C = EWMA baseline at heal time.
	KindHeal

	// KindMigrate / KindUnmigrate: selective per-port migration
	// actions taken on the data path. No payload beyond DPID/Port.
	KindMigrate
	KindUnmigrate

	// KindVerdictFlip: the cache's replay hint for a (dpid, port)
	// changed class. Code = new hint, A = old hint
	// (dpcache.HintNone/Benign/Suspect numbering).
	KindVerdictFlip

	// KindWatermark: the cache backlog reached a new high-watermark
	// band (power-of-two sampled). A = backlog at the watermark.
	KindWatermark

	// KindChaos: injected fault. Code: 1 = outage start, 2 = outage
	// end, 3 = flow churn. A = payload (churned flows for churn).
	KindChaos

	// KindShardFlush: an rtc shard flushed its window-local state at
	// a window barrier. Port = shard id, A = packets processed
	// (cumulative), B = table misses (cumulative), C = cache-ring
	// drops (cumulative).
	KindShardFlush

	// KindRingDrop: the shard→cache ring rejected a packet
	// (power-of-two sampled: recorded at drop counts 1, 2, 4, 8...).
	// A = cumulative drop count at the sample.
	KindRingDrop

	// KindViolation: a soak invariant tripped. A = violation index
	// within the run.
	KindViolation

	// KindSLO: an SLO objective changed health state. Code = new
	// state (0 ok / 1 warn / 2 page), Aux = objective index (meta
	// line maps indices to names), A = short-window burn rate,
	// B = long-window burn rate.
	KindSLO

	// KindTCPCookie: the TCP tier answered SYNs with cookie SYN-ACKs on
	// a shard; sampled on power-of-two counts. Port = ingress port,
	// A = cumulative SYN-ACKs answered on that shard.
	KindTCPCookie

	// KindTCPEvidence: per-source handshake evidence from attribution's
	// window roll — a source whose SYNs are not turning into valid
	// ACKs. DPID = source IPv4 (host order), Port = last ingress port,
	// A = SYNs, B = completions, C = cookie failures + malformed, all
	// cumulative at the roll.
	KindTCPEvidence
)

var kindNames = [...]string{
	KindNone:        "none",
	KindFSM:         "fsm",
	KindSuspect:     "suspect",
	KindBlame:       "blame",
	KindHeal:        "heal",
	KindMigrate:     "migrate",
	KindUnmigrate:   "unmigrate",
	KindVerdictFlip: "verdict_flip",
	KindWatermark:   "watermark",
	KindChaos:       "chaos",
	KindShardFlush:  "shard_flush",
	KindRingDrop:    "ring_drop",
	KindViolation:   "violation",
	KindSLO:         "slo",
	KindTCPCookie:   "tcp_cookie",
	KindTCPEvidence: "tcp_evidence",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind inverts Kind.String; ok is false for unknown names.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return KindNone, false
}

// Event is one journal entry. It is a fixed-size POD so recording is
// a struct copy into a preallocated ring — no pointers, no interface
// boxing, nothing for the GC to trace.
type Event struct {
	Seq    uint64  // per-recorder monotonic sequence (from 1)
	Window int32   // window number at record time
	Rec    uint8   // recorder id (shard / cache / attrib / control)
	Kind   Kind    // what happened
	Code   uint8   // kind-specific small code (state, hint, fault)
	Aux    uint8   // kind-specific second code (from-state, obj index)
	Port   uint16  // subject port (or shard id for shard_flush)
	DPID   uint64  // subject datapath
	A      float64 // kind-specific payload, see Kind docs
	B      float64
	C      float64
}

// Config sizes a Journal.
type Config struct {
	// Recorders is the number of producer slots. Required.
	Recorders int
	// RingCapacity is each recorder's SPSC ring size (rounded up to a
	// power of two). Default 2048.
	RingCapacity int
	// Retain is the flight-recorder depth: how many events each
	// recorder keeps, FIFO, after draining. Default 8192.
	Retain int
}

// Journal owns the recorder set and the flight-recorder retention.
// All methods on a nil *Journal are safe no-ops (returning nil /
// zero), so callers can thread an optional journal without branching.
type Journal struct {
	recs   []*Recorder
	retain []retainRing
	window atomic.Int32
	// shards is the ForEngine layout split point (-1 for flat
	// journals created with New).
	shards  int
	scratch []Event // consumer-owned drain batch buffer
}

// New builds a journal with cfg.Recorders independent producer slots.
func New(cfg Config) *Journal {
	if cfg.Recorders <= 0 {
		cfg.Recorders = 1
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 2048
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 8192
	}
	j := &Journal{
		recs:    make([]*Recorder, cfg.Recorders),
		retain:  make([]retainRing, cfg.Recorders),
		shards:  -1,
		scratch: make([]Event, 256),
	}
	for i := range j.recs {
		j.recs[i] = &Recorder{
			id:   uint8(i),
			win:  &j.window,
			ring: spsc.New[Event](cfg.RingCapacity),
		}
		j.retain[i].buf = make([]Event, cfg.Retain)
	}
	return j
}

// ForEngine builds a journal with the standard rtc-engine recorder
// layout: slots 0..shards-1 for the shard goroutines, then one slot
// each for the cache stage, the attribution roll, and the controller/
// harness. Accessors below address the slots by role.
func ForEngine(shards int) *Journal {
	if shards < 0 {
		shards = 0
	}
	j := New(Config{Recorders: shards + 3})
	j.shards = shards
	return j
}

// Recorder returns producer slot i, or nil when j is nil or i is out
// of range. The returned *Recorder must only be used from a single
// goroutine (SPSC contract).
func (j *Journal) Recorder(i int) *Recorder {
	if j == nil || i < 0 || i >= len(j.recs) {
		return nil
	}
	return j.recs[i]
}

// ShardRec / CacheRec / AttribRec / ControlRec address the ForEngine
// layout. On a flat journal (New) only Recorder(i) is meaningful.
func (j *Journal) ShardRec(i int) *Recorder {
	if j == nil || j.shards < 0 || i < 0 || i >= j.shards {
		return nil
	}
	return j.recs[i]
}

func (j *Journal) CacheRec() *Recorder {
	if j == nil || j.shards < 0 {
		return nil
	}
	return j.recs[j.shards]
}

func (j *Journal) AttribRec() *Recorder {
	if j == nil || j.shards < 0 {
		return nil
	}
	return j.recs[j.shards+1]
}

func (j *Journal) ControlRec() *Recorder {
	if j == nil || j.shards < 0 {
		return nil
	}
	return j.recs[j.shards+2]
}

// SetWindow stamps subsequent events with window w. The soak harness
// calls it at each virtual-time barrier; the live engine calls
// AdvanceWindow at attribution rolls.
func (j *Journal) SetWindow(w int) {
	if j == nil {
		return
	}
	j.window.Store(int32(w))
}

// AdvanceWindow increments the window stamp by one.
func (j *Journal) AdvanceWindow() {
	if j == nil {
		return
	}
	j.window.Add(1)
}

// Window reports the current window stamp.
func (j *Journal) Window() int {
	if j == nil {
		return 0
	}
	return int(j.window.Load())
}

// Drain moves pending events from every recorder ring into the
// per-recorder retention buffers and reports how many moved. It must
// be called from a single consumer goroutine at a time; the pipeline
// calls it from the cache loop while running and the harness calls it
// after shutdown (a sequential handoff, which the SPSC contract
// permits).
func (j *Journal) Drain() int {
	if j == nil {
		return 0
	}
	total := 0
	for i, r := range j.recs {
		for {
			n := r.ring.PopBatch(j.scratch)
			if n == 0 {
				break
			}
			rr := &j.retain[i]
			for _, ev := range j.scratch[:n] {
				rr.add(ev)
			}
			total += n
		}
	}
	return total
}

// Dropped reports events lost to ring overflow across all recorders.
// Nonzero drops mean the consumer fell behind; the dump records the
// count so a truncated timeline is never mistaken for a quiet one.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	var d uint64
	for _, r := range j.recs {
		d += r.drops.Load()
	}
	return d
}

// Events returns the retained flight-recorder contents merged into
// the canonical total order: (Window, Rec, Seq) ascending. Call after
// a final Drain; the slice is freshly allocated.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	n := 0
	for i := range j.retain {
		n += j.retain[i].n
	}
	out := make([]Event, 0, n)
	for i := range j.retain {
		out = j.retain[i].appendTo(out)
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := &out[a], &out[b]
		if x.Window != y.Window {
			return x.Window < y.Window
		}
		if x.Rec != y.Rec {
			return x.Rec < y.Rec
		}
		return x.Seq < y.Seq
	})
	return out
}

// Recorder is one producer slot. Record is safe on a nil receiver so
// instrumented code can keep an unconditional call on its hot path.
type Recorder struct {
	id    uint8
	win   *atomic.Int32
	ring  *spsc.Ring[Event]
	seq   uint64 // producer-local, no atomics needed
	drops atomic.Uint64
}

// Record appends one event. It never blocks and never allocates: on
// ring overflow the event is counted as dropped and the sequence
// number still advances, so a gap in Seq is itself evidence of loss.
func (r *Recorder) Record(k Kind, code, aux uint8, dpid uint64, port uint16, a, b, c float64) {
	if r == nil {
		return
	}
	r.seq++
	ev := Event{
		Seq:    r.seq,
		Window: r.win.Load(),
		Rec:    r.id,
		Kind:   k,
		Code:   code,
		Aux:    aux,
		Port:   port,
		DPID:   dpid,
		A:      a,
		B:      b,
		C:      c,
	}
	if !r.ring.Push(ev) {
		r.drops.Add(1)
	}
}

// retainRing is a fixed-capacity FIFO: when full, the oldest event is
// overwritten. Per-recorder FIFO retention makes the retained set a
// pure function of the recorded stream, independent of drain timing.
type retainRing struct {
	buf   []Event
	start int
	n     int
}

func (rr *retainRing) add(ev Event) {
	if rr.n < len(rr.buf) {
		rr.buf[(rr.start+rr.n)%len(rr.buf)] = ev
		rr.n++
		return
	}
	rr.buf[rr.start] = ev
	rr.start = (rr.start + 1) % len(rr.buf)
}

func (rr *retainRing) appendTo(dst []Event) []Event {
	for i := 0; i < rr.n; i++ {
		dst = append(dst, rr.buf[(rr.start+i)%len(rr.buf)])
	}
	return dst
}

// Package netsim provides the discrete-event substrate the experiments run
// on: a virtual clock with a deterministic event queue, links with
// bandwidth and latency, periodic tasks, and measurement helpers.
//
// Determinism contract: events fire in (time, schedule-order) order, so a
// scenario driven from a seeded RNG reproduces exactly.
package netsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing.
type Event struct {
	at    time.Time
	seq   uint64
	fn    func()
	index int // heap index, -1 when popped/cancelled
	dead  bool
}

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event fired.
func (ev *Event) Cancel() { ev.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Epoch is the conventional start instant of every simulation. Using a
// fixed epoch keeps logs and expectations stable across runs.
var Epoch = time.Date(2015, 6, 22, 0, 0, 0, 0, time.UTC)

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now time.Time
	pq  eventHeap
	seq uint64
}

// NewEngine returns an engine whose clock starts at Epoch.
func NewEngine() *Engine { return &Engine{now: Epoch} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(Epoch) }

// Schedule runs fn after d of virtual time (d < 0 is clamped to 0).
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at instant t (clamped to now if in the past).
func (e *Engine) At(t time.Time, fn func()) *Event {
	if t.Before(e.now) {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Step fires the earliest pending event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events until the queue is exhausted or the next event is
// after t; the clock is then advanced to t. It returns the number of
// events fired.
func (e *Engine) RunUntil(t time.Time) int {
	fired := 0
	for len(e.pq) > 0 {
		// Skip over cancelled heads without advancing time.
		head := e.pq[0]
		if head.dead {
			heap.Pop(&e.pq)
			continue
		}
		if head.at.After(t) {
			break
		}
		e.Step()
		fired++
	}
	if e.now.Before(t) {
		e.now = t
	}
	return fired
}

// RunFor advances the clock by d, firing due events.
func (e *Engine) RunFor(d time.Duration) int { return e.RunUntil(e.now.Add(d)) }

// Pending returns the number of not-yet-cancelled queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Ticker invokes fn every interval until cancelled.
type Ticker struct {
	eng      *Engine
	interval time.Duration
	fn       func()
	ev       *Event
	stopped  bool
}

// NewTicker starts a periodic task; the first firing is one interval from
// now.
func (e *Engine) NewTicker(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

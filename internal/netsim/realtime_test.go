package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealTimeRunnerAdvancesClock(t *testing.T) {
	eng := NewEngine()
	r := NewRealTimeRunner(eng)
	r.Start()
	defer r.Stop()

	fired := make(chan struct{})
	r.Do(func() {
		eng.Schedule(20*time.Millisecond, func() { close(fired) })
	})
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("scheduled event never fired under real-time pumping")
	}
}

func TestRealTimeRunnerDoIsSerialized(t *testing.T) {
	eng := NewEngine()
	r := NewRealTimeRunner(eng)
	r.Start()
	defer r.Stop()

	// Many goroutines mutate an unsynchronised counter only through Do:
	// the runner's serialisation is the only protection. Run under -race
	// to validate.
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Do(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	got := 0
	r.Do(func() { got = counter })
	if got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
}

func TestRealTimeRunnerStopIsIdempotentAndDrains(t *testing.T) {
	eng := NewEngine()
	r := NewRealTimeRunner(eng)
	r.Start()

	var ran atomic.Bool
	done := make(chan struct{})
	go func() {
		r.Do(func() { ran.Store(true) })
		close(done)
	}()
	<-done
	r.Stop()
	r.Stop() // second stop must not panic or hang
	if !ran.Load() {
		t.Error("work submitted before Stop was lost")
	}

	// After Stop, Do degrades to inline execution.
	inline := false
	r.Do(func() { inline = true })
	if !inline {
		t.Error("post-Stop Do did not run the function")
	}
}

func TestRealTimeRunnerStopUnderFullInbox(t *testing.T) {
	// Regression: a Do blocked on a full inbox holds the mutex while
	// Stop runs; the stop path must drain rather than deadlock, and no
	// submitted function may be lost.
	eng := NewEngine()
	r := NewRealTimeRunner(eng)
	r.Start()

	var executed atomic.Int64
	const submitters = 16
	const perSubmitter = 200
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				r.Do(func() { executed.Add(1) })
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // let the flood build
	stopDone := make(chan struct{})
	go func() {
		r.Stop()
		close(stopDone)
	}()
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked under a full inbox")
	}
	wg.Wait()
	if got := executed.Load(); got != submitters*perSubmitter {
		t.Errorf("executed %d of %d submitted functions", got, submitters*perSubmitter)
	}
}

func TestRealTimeRunnerDoWaitsForCompletion(t *testing.T) {
	eng := NewEngine()
	r := NewRealTimeRunner(eng)
	r.Start()
	defer r.Stop()

	sideEffect := false
	r.Do(func() {
		time.Sleep(10 * time.Millisecond)
		sideEffect = true
	})
	// Do returned: the effect must be visible (happens-before via the
	// done channel).
	if !sideEffect {
		t.Error("Do returned before the function completed")
	}
}

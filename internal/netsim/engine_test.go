package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.RunFor(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
}

func TestEngineTieBrokenByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.RunFor(time.Second)
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-instant events fired out of schedule order: %v", got)
	}
}

func TestEngineRandomisedOrdering(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(3))
	var fired []time.Time
	for i := 0; i < 500; i++ {
		e.Schedule(time.Duration(r.Intn(1000))*time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	}
	e.RunFor(2 * time.Second)
	if len(fired) != 500 {
		t.Fatalf("fired %d events, want 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].Before(fired[i-1]) {
			t.Fatalf("time went backwards at event %d", i)
		}
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunFor(3 * time.Second)
	if got := e.Elapsed(); got != 3*time.Second {
		t.Errorf("Elapsed = %v, want 3s", got)
	}
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2*time.Second, func() { fired = true })
	e.RunFor(time.Second)
	if fired {
		t.Error("event beyond the horizon fired")
	}
	e.RunFor(time.Second)
	if !fired {
		t.Error("event at the horizon did not fire")
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10*time.Millisecond, func() { fired = true })
	ev.Cancel()
	e.RunFor(time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.Schedule(time.Millisecond, recurse)
		}
	}
	e.Schedule(time.Millisecond, recurse)
	e.RunFor(time.Second)
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if got := e.Elapsed(); got != time.Second {
		t.Errorf("Elapsed = %v", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	e.RunFor(0)
	if !fired {
		t.Error("negative-delay event did not fire immediately")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	n := 0
	tk := e.NewTicker(100*time.Millisecond, func() { n++ })
	e.RunFor(time.Second)
	if n != 10 {
		t.Errorf("ticks = %d, want 10", n)
	}
	tk.Stop()
	e.RunFor(time.Second)
	if n != 10 {
		t.Errorf("ticks after Stop = %d, want 10", n)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.NewTicker(10*time.Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunFor(time.Second)
	if n != 3 {
		t.Errorf("ticks = %d, want 3", n)
	}
}

func TestLinkSerializationAndLatency(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 8e6 /* 8 Mbit/s => 1 byte/µs */, 10*time.Millisecond)
	var delivered time.Time
	l.Send(1000, func() { delivered = e.Now() })
	e.RunFor(time.Second)
	want := Epoch.Add(time.Millisecond /* 1000B at 1B/µs */ + 10*time.Millisecond)
	if !delivered.Equal(want) {
		t.Errorf("delivered at %v, want %v", delivered.Sub(Epoch), want.Sub(Epoch))
	}
}

func TestLinkContention(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 8e6, 0)
	var times []time.Duration
	for i := 0; i < 3; i++ {
		l.Send(1000, func() { times = append(times, e.Elapsed()) })
	}
	e.RunFor(time.Second)
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("frame %d delivered at %v, want %v", i, times[i], want[i])
		}
	}
	if l.FramesSent() != 3 || l.BytesSent() != 3000 {
		t.Errorf("counters = (%d, %d)", l.FramesSent(), l.BytesSent())
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0, 5*time.Millisecond)
	var at time.Duration
	l.Send(1<<20, func() { at = e.Elapsed() })
	e.RunFor(time.Second)
	if at != 5*time.Millisecond {
		t.Errorf("delivered at %v, want 5ms (latency only)", at)
	}
}

func TestMeterRate(t *testing.T) {
	e := NewEngine()
	m := NewMeter(e)
	m.Mark()
	e.Schedule(500*time.Millisecond, func() { m.Add(125000) }) // 1 Mbit
	e.RunFor(time.Second)
	if got := m.Rate(); got != 1e6 {
		t.Errorf("Rate = %v, want 1e6", got)
	}
	m.Mark()
	if got := m.Rate(); got != 0 {
		t.Errorf("Rate after Mark with no time = %v, want 0", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Observe(100); got != 100 {
		t.Errorf("first sample = %v, want 100", got)
	}
	if got := e.Observe(0); got != 50 {
		t.Errorf("second sample = %v, want 50", got)
	}
	if got := e.Value(); got != 50 {
		t.Errorf("Value = %v", got)
	}
}

package netsim

import (
	"sync"
	"time"
)

// RealTimeRunner pumps an Engine against the wall clock so that
// event-driven components (the controller, FloodGuard) can serve real
// network peers: virtual time tracks real time, and external goroutines
// inject work through Do.
//
// All engine callbacks execute on the runner's goroutine, preserving the
// engine's single-threaded discipline.
type RealTimeRunner struct {
	eng   *Engine
	inbox chan func()
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once

	mu     sync.Mutex
	closed bool
}

// NewRealTimeRunner wraps an engine. Call Start to begin pumping and
// Stop to shut down.
func NewRealTimeRunner(eng *Engine) *RealTimeRunner {
	return &RealTimeRunner{
		eng:   eng,
		inbox: make(chan func(), 256),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the pump goroutine.
func (r *RealTimeRunner) Start() {
	go r.loop()
}

func (r *RealTimeRunner) loop() {
	defer close(r.done)
	const tick = time.Millisecond
	start := time.Now()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			// Refuse new work, then drain what was already enqueued so
			// no Do caller's function is lost. A Do may hold the mutex
			// while blocked sending into a full inbox, so drain
			// opportunistically until the flag can be taken.
			for {
				r.drain()
				if r.mu.TryLock() {
					r.closed = true
					r.mu.Unlock()
					break
				}
			}
			r.drain()
			return
		case fn := <-r.inbox:
			fn()
		case <-ticker.C:
			r.eng.RunUntil(Epoch.Add(time.Since(start)))
		}
	}
}

// drain runs every currently queued function.
func (r *RealTimeRunner) drain() {
	for {
		select {
		case fn := <-r.inbox:
			fn()
		default:
			return
		}
	}
}

// Do schedules fn onto the runner goroutine and waits for it to execute.
// It is safe to call from any goroutine. After Stop, Do runs fn inline
// (single-threaded by then). Work is never lost: functions enqueued
// before Stop are drained by the stop path.
func (r *RealTimeRunner) Do(fn func()) {
	doneCh := make(chan struct{})
	wrapped := func() {
		fn()
		close(doneCh)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		fn()
		return
	}
	// The loop drains the inbox until closed is set — including in its
	// stop path, which only sets closed via TryLock once the inbox is
	// empty — so this send cannot block forever while the mutex is held.
	r.inbox <- wrapped
	r.mu.Unlock()
	<-doneCh
}

// Stop terminates the pump and waits for the goroutine to exit.
func (r *RealTimeRunner) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

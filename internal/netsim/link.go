package netsim

import "time"

// Link models a unidirectional link with finite bandwidth and fixed
// propagation latency. Transmissions serialise: a frame waits for the
// frames queued before it (FIFO, infinite queue).
type Link struct {
	eng       *Engine
	bandwidth float64 // bits per second; 0 = infinite
	latency   time.Duration
	busyUntil time.Time

	bytesSent  uint64
	framesSent uint64
}

// NewLink creates a link on eng. bandwidthBits is in bits/second
// (0 = infinite), latency is one-way propagation delay.
func NewLink(eng *Engine, bandwidthBits float64, latency time.Duration) *Link {
	return &Link{eng: eng, bandwidth: bandwidthBits, latency: latency}
}

// Bandwidth returns the configured bandwidth in bits/second.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// Latency returns the propagation delay.
func (l *Link) Latency() time.Duration { return l.latency }

// BytesSent returns the cumulative bytes accepted for transmission.
func (l *Link) BytesSent() uint64 { return l.bytesSent }

// FramesSent returns the cumulative frames accepted for transmission.
func (l *Link) FramesSent() uint64 { return l.framesSent }

// SerializationDelay returns how long size bytes occupy the link.
func (l *Link) SerializationDelay(size int) time.Duration {
	if l.bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(size*8) / l.bandwidth * float64(time.Second))
}

// Send queues a frame of size bytes; deliver fires when it arrives at the
// far end. It returns the scheduled delivery event.
func (l *Link) Send(size int, deliver func()) *Event {
	now := l.eng.Now()
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	done := start.Add(l.SerializationDelay(size))
	l.busyUntil = done
	l.bytesSent += uint64(size)
	l.framesSent++
	return l.eng.At(done.Add(l.latency), deliver)
}

// QueueDelay reports how long a frame sent now would wait before starting
// to serialise.
func (l *Link) QueueDelay() time.Duration {
	if l.busyUntil.After(l.eng.Now()) {
		return l.busyUntil.Sub(l.eng.Now())
	}
	return 0
}

// Meter accumulates delivered bytes and exposes average goodput over
// arbitrary measurement windows.
type Meter struct {
	eng        *Engine
	totalBytes uint64
	markBytes  uint64
	markTime   time.Time
}

// NewMeter returns a meter reading eng's clock.
func NewMeter(eng *Engine) *Meter {
	return &Meter{eng: eng, markTime: eng.Now()}
}

// Add records size delivered bytes.
func (m *Meter) Add(size int) { m.totalBytes += uint64(size) }

// Total returns cumulative bytes.
func (m *Meter) Total() uint64 { return m.totalBytes }

// Mark starts a new measurement window.
func (m *Meter) Mark() {
	m.markBytes = m.totalBytes
	m.markTime = m.eng.Now()
}

// WindowBits returns bits delivered since the last Mark.
func (m *Meter) WindowBits() float64 {
	return float64(m.totalBytes-m.markBytes) * 8
}

// Rate returns the average goodput in bits/second since the last Mark.
func (m *Meter) Rate() float64 {
	dt := m.eng.Now().Sub(m.markTime).Seconds()
	if dt <= 0 {
		return 0
	}
	return m.WindowBits() / dt
}

// EWMA is an exponentially weighted moving average of a rate signal,
// used by the migration agent's flooding detector.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds a new sample in and returns the new average.
func (e *EWMA) Observe(sample float64) float64 {
	if !e.init {
		e.value = sample
		e.init = true
		return e.value
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average.
func (e *EWMA) Value() float64 { return e.value }

package symexec

import (
	"reflect"
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
	"floodguard/internal/solver"
)

// fuzzGen decodes a byte stream into an appir handler: a deterministic
// grammar-directed generator, so every corpus entry maps to exactly one
// program and crashes reproduce.
type fuzzGen struct {
	data   []byte
	pos    int
	budget int // total statements + conditions we are willing to emit
}

func (g *fuzzGen) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

var (
	fuzzMACFields = []appir.Field{appir.FEthSrc, appir.FEthDst}
	fuzzIPFields  = []appir.Field{appir.FNwSrc, appir.FNwDst}
	fuzzU16Fields = []appir.Field{appir.FInPort, appir.FEthType, appir.FTpSrc, appir.FTpDst}
	fuzzTables    = []string{"fza", "fzb"}
)

func (g *fuzzGen) cond(depth int) appir.Expr {
	g.budget--
	b := g.next()
	k := int(b) % 8
	if depth <= 0 && k >= 6 {
		k %= 6
	}
	switch k {
	case 0:
		f := fuzzMACFields[int(g.next())%len(fuzzMACFields)]
		return appir.FieldEq(f, appir.MACValue(netpkt.MAC{0, 0, 0, 0, 0, g.next()}))
	case 1:
		f := fuzzU16Fields[int(g.next())%len(fuzzU16Fields)]
		return appir.FieldEq(f, appir.U16Value(uint16(g.next())))
	case 2:
		f := fuzzMACFields[int(g.next())%len(fuzzMACFields)]
		return appir.FieldIn(f, fuzzTables[int(g.next())%len(fuzzTables)])
	case 3:
		return appir.FieldInPrefixes(fuzzIPFields[int(g.next())%len(fuzzIPFields)], "fzp")
	case 4:
		return appir.HighBit{A: appir.FieldRef{F: fuzzIPFields[int(g.next())%len(fuzzIPFields)]}}
	case 5:
		f := fuzzU16Fields[int(g.next())%len(fuzzU16Fields)]
		return appir.FieldEqScalar(f, "fs0")
	case 6:
		return appir.Not{A: g.cond(depth - 1)}
	default:
		a, b2 := g.cond(depth-1), g.cond(depth-1)
		if g.next()%2 == 0 {
			return appir.And{A: a, B: b2}
		}
		return appir.Or{A: a, B: b2}
	}
}

func (g *fuzzGen) template() appir.RuleTemplate {
	f := fuzzMACFields[int(g.next())%len(fuzzMACFields)]
	var act appir.ActionTemplate
	switch g.next() % 4 {
	case 0:
		act = appir.ActFlood{}
	case 1:
		act = appir.ActOutput{Port: appir.Const{V: appir.U16Value(uint16(g.next())%48 + 1)}}
	case 2:
		act = appir.ActOutput{Port: appir.FieldLookup(f, fuzzTables[int(g.next())%len(fuzzTables)])}
	default:
		act = appir.ActOutput{Port: appir.ScalarRef{Name: "fs0"}}
	}
	return appir.RuleTemplate{
		Match:       []appir.MatchField{{F: f, Val: appir.FieldRef{F: f}}},
		Priority:    uint16(g.next())%100 + 1,
		IdleTimeout: uint16(g.next())%30 + 1,
		Actions:     []appir.ActionTemplate{act},
	}
}

func (g *fuzzGen) stmts(depth int) []appir.Stmt {
	n := int(g.next())%3 + 1
	var out []appir.Stmt
	for i := 0; i < n && g.budget > 0; i++ {
		g.budget--
		k := int(g.next()) % 6
		if depth <= 0 && k == 0 {
			k = 1
		}
		switch k {
		case 0:
			out = append(out, appir.If{
				Cond: g.cond(2),
				Then: g.stmts(depth - 1),
				Else: g.stmts(depth - 1),
			})
		case 1:
			out = append(out, appir.Install{Rule: g.template()})
		case 2:
			out = append(out, appir.PacketOut{Actions: []appir.ActionTemplate{appir.ActFlood{}}})
		case 3:
			out = append(out, appir.Learn{
				Table: fuzzTables[int(g.next())%len(fuzzTables)],
				Key:   appir.FieldRef{F: appir.FEthSrc},
				Val:   appir.Const{V: appir.U16Value(uint16(g.next())%48 + 1)},
			})
		case 4:
			out = append(out, appir.Drop{})
		default:
			out = append(out, appir.SetScalar{Name: "fs0", Val: appir.Const{V: appir.U16Value(uint16(g.next()))}})
		}
	}
	return out
}

func fuzzState() *appir.State {
	st := appir.NewState()
	st.SetScalar("fs0", appir.U16Value(7))
	for _, tbl := range fuzzTables {
		for i := 0; i < 6; i++ {
			st.Learn(tbl, appir.MACValue(netpkt.MAC{0, 0, 0, 0, 0, byte(i + 1)}), appir.U16Value(uint16(i+1)))
		}
	}
	st.AddPrefix("fzp", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
	st.AddPrefix("fzp", appir.IPValue(netpkt.MustIPv4("192.168.0.0")), 16, appir.U16Value(2))
	return st
}

// FuzzExplore drives Algorithm 1 and Algorithm 2 end to end over
// generated handlers, checking the structural invariants that the rest
// of the system leans on: every emitted path is feasible and internally
// consistent, parallel derivation is bit-identical to sequential
// (results and errors alike), and memoized derivation agrees with the
// direct call before and after a state mutation.
func FuzzExplore(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 7, 1, 2, 0, 6, 3, 0, 1, 4, 5, 0, 2, 2, 1})
	f.Add([]byte{6, 7, 0, 1, 3, 2, 0, 0, 5, 1, 0, 4, 2, 2, 7, 7, 6, 1, 0, 3, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data, budget: 60}
		prog := &appir.Program{Name: "fuzz", Handler: g.stmts(3)}

		paths, err := Explore(prog)
		if err != nil {
			return // path explosion is a legal outcome, not a bug
		}
		if len(paths) > maxPaths {
			t.Fatalf("%d paths exceeds maxPaths", len(paths))
		}
		for i := range paths {
			p := &paths[i]
			if p.ID != i {
				t.Fatalf("path %d carries ID %d", i, p.ID)
			}
			if len(p.CondLearns) != len(p.Conds) {
				t.Fatalf("path %d: %d CondLearns for %d Conds", i, len(p.CondLearns), len(p.Conds))
			}
			if !solver.Feasible(p.Conds) {
				t.Fatalf("Explore emitted infeasible path %d: %s", i, p.String())
			}
		}

		st := fuzzState()
		seq, seqErr := DeriveRulesOpts(paths, st, DeriveOptions{Workers: 1})
		par, parErr := DeriveRulesOpts(paths, st, DeriveOptions{Workers: 4})
		if (seqErr == nil) != (parErr == nil) ||
			(seqErr != nil && seqErr.Error() != parErr.Error()) {
			t.Fatalf("error divergence: sequential %v, parallel %v", seqErr, parErr)
		}
		if seqErr == nil && !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel derivation diverges: %d vs %d rules", len(par), len(seq))
		}
		if seqErr != nil {
			return
		}

		m := NewMemo(paths)
		for round := 0; round < 2; round++ {
			got, err := m.Derive(st, DeriveOptions{})
			if err != nil {
				t.Fatalf("memo round %d: %v", round, err)
			}
			want, err := DeriveRules(paths, st)
			if err != nil {
				t.Fatalf("direct round %d: %v", round, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: memo diverges from direct (%d vs %d rules)",
					round, len(got), len(want))
			}
			st.Learn(fuzzTables[0], appir.MACValue(netpkt.MAC{9, 0, 0, 0, 0, byte(round)}),
				appir.U16Value(uint16(round)+1))
		}
	})
}

package symexec

import (
	"sort"
	"sync/atomic"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

// Memo caches per-path derivation results keyed by the epochs of the
// globals each path reads. appir.State stamps every global with the
// store version of its last real mutation, so a path whose referenced
// globals all carry the epochs recorded at its last derivation must
// concretize to the same rules — Derive reuses them and re-solves only
// the stale paths. A repeat Init→Defense transition with unchanged
// state then costs one version fetch and a slice concatenation instead
// of a full Algorithm 2 run.
//
// Derive is not safe for concurrent calls (the analyzer runs one
// derivation at a time); Stats is safe from any goroutine.
type Memo struct {
	paths []Path
	// union is the deduplicated list of globals any path reads; vers is
	// their epoch snapshot buffer, refreshed per Derive under one lock.
	union []string
	vers  []uint64
	// deps[i] indexes union for the globals path i reads.
	deps  [][]int
	slots []memoSlot
	stale []int // scratch: indices needing re-derivation
	// last is the previous Derive's assembled result, reusable verbatim
	// when every slot is fresh (lastOK): the fully-warm path then costs
	// one epoch sweep and no allocation at all.
	last   []ProactiveRule
	lastOK bool

	hits   atomic.Uint64
	misses atomic.Uint64

	// match caches MatchPath results for concrete packets under the
	// same epoch regime: any global mutation empties it.
	match     map[matchKey]*Path
	matchVers []uint64
}

type memoSlot struct {
	valid bool
	vers  []uint64 // dep epochs at derivation time, aligned with deps[i]
	rules []ProactiveRule
}

// matchKey is the comparable header view a match predicate can read:
// every scalar Packet field. TCPOptions is a slice and deliberately
// excluded — no path condition references option bytes.
type matchKey struct {
	pkt    netpkt.FlowKey
	arpOp  uint16
	nwTOS  uint8
	flags  uint8
	hasVL  bool
	vlanID uint16
	inPort uint16
}

func newMatchKey(p *netpkt.Packet, inPort uint16) matchKey {
	return matchKey{
		pkt:    p.Key(),
		arpOp:  p.ARPOp,
		nwTOS:  p.NwTOS,
		flags:  p.TCPFlags,
		hasVL:  p.HasVLAN,
		vlanID: p.VLANID,
		inPort: inPort,
	}
}

// NewMemo prepares a memo over the given paths, extracting each path's
// global-variable dependencies once.
func NewMemo(paths []Path) *Memo {
	m := &Memo{
		paths: paths,
		deps:  make([][]int, len(paths)),
		slots: make([]memoSlot, len(paths)),
		match: make(map[matchKey]*Path),
	}
	idx := make(map[string]int)
	for i := range paths {
		names := pathGlobals(&paths[i])
		di := make([]int, 0, len(names))
		for _, n := range names {
			j, ok := idx[n]
			if !ok {
				j = len(m.union)
				idx[n] = j
				m.union = append(m.union, n)
			}
			di = append(di, j)
		}
		m.deps[i] = di
		m.slots[i].vers = make([]uint64, len(di))
	}
	return m
}

// pathGlobals returns the sorted, deduplicated global names a path's
// derivation reads: its condition plus its install templates (match
// values and actions all resolve against the live state).
func pathGlobals(p *Path) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, c := range p.Conds {
		add(appir.UsedGlobals(c.Expr))
	}
	for _, r := range p.Installs {
		for _, mf := range r.Match {
			add(appir.UsedGlobals(mf.Val))
		}
		for _, a := range r.Actions {
			add(actionGlobals(a))
		}
	}
	sort.Strings(out)
	return out
}

// Paths returns the memoized path set.
func (m *Memo) Paths() []Path { return m.paths }

// Derive returns the rules DeriveRulesOpts would produce for the live
// state, re-solving only paths whose referenced globals mutated since
// their last derivation. The returned slice is freshly assembled but
// shares per-rule storage with the cache: callers must not modify it.
func (m *Memo) Derive(st *appir.State, opts DeriveOptions) ([]ProactiveRule, error) {
	m.vers = st.GlobalVersions(m.union, m.vers[:0])
	m.stale = m.stale[:0]
	for i := range m.slots {
		s := &m.slots[i]
		if s.valid && depsFresh(s.vers, m.deps[i], m.vers) {
			m.hits.Add(1)
			continue
		}
		m.misses.Add(1)
		m.stale = append(m.stale, i)
	}
	if len(m.stale) == 0 && m.lastOK {
		return m.last, nil
	}
	if len(m.stale) > 0 {
		results, err := deriveSubset(m.paths, m.stale, st, opts.Workers)
		if err != nil {
			m.lastOK = false
			return nil, err
		}
		for k, i := range m.stale {
			s := &m.slots[i]
			s.rules = results[k]
			for d, j := range m.deps[i] {
				s.vers[d] = m.vers[j]
			}
			s.valid = true
		}
	}
	out := make([][]ProactiveRule, len(m.slots))
	for i := range m.slots {
		out[i] = m.slots[i].rules
	}
	m.last = concatRules(out)
	m.lastOK = true
	return m.last, nil
}

func depsFresh(have []uint64, deps []int, cur []uint64) bool {
	for d, j := range deps {
		if have[d] != cur[j] {
			return false
		}
	}
	return true
}

// Invalidate drops every cached result (and the MatchPath cache); the
// next Derive re-solves all paths.
func (m *Memo) Invalidate() {
	for i := range m.slots {
		m.slots[i].valid = false
	}
	m.lastOK = false
	clear(m.match)
	m.matchVers = m.matchVers[:0]
}

// Stats returns the cumulative per-path cache hits and misses across
// Derive calls. Safe from any goroutine.
func (m *Memo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// MatchPath is the memoized form of the package-level MatchPath: repeat
// queries for the same packet under unchanged globals return the cached
// path. Like Derive, it is not safe for concurrent calls.
func (m *Memo) MatchPath(st *appir.State, pkt *netpkt.Packet, inPort uint16) (*Path, error) {
	cur := st.GlobalVersions(m.union, m.vers[:0])
	m.vers = cur
	if !versEqual(m.matchVers, cur) {
		clear(m.match)
		m.matchVers = append(m.matchVers[:0], cur...)
	}
	key := newMatchKey(pkt, inPort)
	if p, ok := m.match[key]; ok {
		m.hits.Add(1)
		return p, nil
	}
	m.misses.Add(1)
	p, err := MatchPath(m.paths, st, pkt, inPort)
	if err != nil {
		return nil, err
	}
	m.match[key] = p
	return p, nil
}

func versEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package symexec

import (
	"reflect"
	"strings"
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/netpkt"
)

// genPaths builds n synthetic install-terminated paths spread over
// nTables learned tables — the shape of an attack-time derivation
// workload — and a state with entries entries per table.
func genPaths(n, nTables, entries int) ([]Path, *appir.State) {
	st := appir.NewState()
	tables := make([]string, nTables)
	for t := range tables {
		tables[t] = "t" + string(rune('a'+t%26)) + string(rune('a'+t/26))
		for e := 0; e < entries; e++ {
			st.Learn(tables[t],
				appir.MACValue(netpkt.MAC{0, byte(t), 0, 0, byte(e >> 8), byte(e)}),
				appir.U16Value(uint16(e%48+1)))
		}
	}
	paths := make([]Path, n)
	for i := range paths {
		table := tables[i%nTables]
		paths[i] = Path{
			ID: i,
			Conds: []appir.Cond{
				{Expr: appir.FieldEq(appir.FEthType, appir.U16Value(netpkt.EtherTypeIPv4)), Want: true},
				{Expr: appir.FieldIn(appir.FEthDst, table), Want: true},
			},
			CondLearns: []int{0, 0},
			Installs: []appir.RuleTemplate{{
				Match:       []appir.MatchField{{F: appir.FEthDst, Val: appir.FieldRef{F: appir.FEthDst}}},
				Priority:    100,
				IdleTimeout: uint16(i%30 + 1),
				Actions:     []appir.ActionTemplate{appir.ActOutput{Port: appir.FieldLookup(appir.FEthDst, table)}},
			}},
		}
	}
	return paths, st
}

// Parallel derivation must be bit-identical to sequential — same rules,
// same order — at every worker count, on synthetic fan-outs and on the
// real evaluation apps.
func TestDeriveRulesParallelMatchesSequential(t *testing.T) {
	paths, st := genPaths(97, 7, 13)
	want, err := DeriveRulesOpts(paths, st, DeriveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("synthetic workload produced no rules")
	}
	for _, workers := range []int{0, 2, 3, 4, 8, 16} {
		got, err := DeriveRulesOpts(paths, st, DeriveOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: output diverges from sequential (%d vs %d rules)",
				workers, len(got), len(want))
		}
	}

	progs, states := apps.EvaluationSet()
	for i, prog := range progs {
		paths, err := Explore(prog)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		want, err := DeriveRulesOpts(paths, states[i], DeriveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		got, err := DeriveRulesOpts(paths, states[i], DeriveOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: parallel output diverges from sequential", prog.Name)
		}
	}
}

// The worker pool must report the sequential run's error: the first
// failing path in path order, whatever the scheduling.
func TestDeriveRulesParallelErrorDeterministic(t *testing.T) {
	paths, st := genPaths(64, 4, 4)
	// Poison two paths with an action reading an unset scalar; the lower
	// path ID must win the error report.
	bad := appir.ActOutput{Port: appir.ScalarRef{Name: "missing"}}
	paths[41].Installs[0].Actions = []appir.ActionTemplate{bad}
	paths[17].Installs[0].Actions = []appir.ActionTemplate{bad}

	seqErr := func() string {
		_, err := DeriveRulesOpts(paths, st, DeriveOptions{Workers: 1})
		if err == nil {
			t.Fatal("poisoned workload derived without error")
		}
		return err.Error()
	}()
	if !strings.Contains(seqErr, "path 17") {
		t.Fatalf("sequential error names the wrong path: %v", seqErr)
	}
	for trial := 0; trial < 8; trial++ {
		_, err := DeriveRulesOpts(paths, st, DeriveOptions{Workers: 8})
		if err == nil || err.Error() != seqErr {
			t.Fatalf("parallel error %q, want %q", err, seqErr)
		}
	}
}

// Concurrent derivation against a state being mutated from another
// goroutine must be race-clean (run under -race): the analyzer's tracker
// and the controller's event loop share the State.
func TestDeriveRulesParallelRaceWithMutations(t *testing.T) {
	paths, st := genPaths(64, 4, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			st.Learn("ta"+string(rune('a')),
				appir.MACValue(netpkt.MAC{9, 9, 0, 0, byte(i >> 8), byte(i)}),
				appir.U16Value(uint16(i%48+1)))
			st.SetScalar("x", appir.U16Value(uint16(i)))
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := DeriveRulesOpts(paths, st, DeriveOptions{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

package symexec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"floodguard/internal/appir"
	"floodguard/internal/solver"
)

// minParallelPaths is the path count below which the pool overhead is
// not worth paying and derivation runs inline.
const minParallelPaths = 8

// DeriveOptions tunes rule derivation.
type DeriveOptions struct {
	// Workers caps the concurrent path workers. 0 means GOMAXPROCS; 1
	// forces sequential derivation.
	Workers int
}

// DeriveRulesOpts is DeriveRules with explicit tuning. Each path's
// concretization is independent, so paths are fanned out over a bounded
// worker pool (each worker with its own solver arena) and the per-path
// results are concatenated in path order — the output is bit-identical
// to a sequential run, whatever the worker count or scheduling.
func DeriveRulesOpts(paths []Path, st *appir.State, opts DeriveOptions) ([]ProactiveRule, error) {
	results, err := deriveSubset(paths, nil, st, opts.Workers)
	if err != nil {
		return nil, err
	}
	return concatRules(results), nil
}

// concatRules flattens per-path results in path order, preserving the
// sequential convention that no rules means a nil slice.
func concatRules(results [][]ProactiveRule) []ProactiveRule {
	total := 0
	for _, r := range results {
		total += len(r)
	}
	if total == 0 {
		return nil
	}
	out := make([]ProactiveRule, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// deriveSubset derives the paths selected by idxs (nil selects all),
// returning one result slice per selection, aligned with idxs (or with
// paths when idxs is nil). Every selection is attempted even after a
// failure, so the reported error is deterministic — the first failing
// selection in order, regardless of which worker hit it first.
func deriveSubset(paths []Path, idxs []int, st *appir.State, workers int) ([][]ProactiveRule, error) {
	n := len(paths)
	if idxs != nil {
		n = len(idxs)
	}
	pathAt := func(i int) *Path {
		if idxs != nil {
			return &paths[idxs[i]]
		}
		return &paths[i]
	}

	results := make([][]ProactiveRule, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelPaths {
		ar := solver.NewArena()
		for i := 0; i < n; i++ {
			rules, err := derivePath(pathAt(i), st, ar)
			if err != nil {
				return nil, err
			}
			results[i] = rules
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := solver.NewArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				rules, err := derivePath(pathAt(i), st, ar)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = rules
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

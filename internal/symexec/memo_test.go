package symexec

import (
	"reflect"
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/netpkt"
)

// A warm Derive (no global changes) must return the same rules as a
// cold one, and selective invalidation must re-solve only the paths
// whose globals moved.
func TestMemoDeriveSelectiveInvalidation(t *testing.T) {
	paths, st := genPaths(60, 6, 8) // paths i depend on table t(i%6)
	m := NewMemo(paths)

	cold, err := m.Derive(st, DeriveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := DeriveRules(paths, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Fatal("memoized cold derive diverges from DeriveRules")
	}
	if hits, misses := m.Stats(); hits != 0 || misses != 60 {
		t.Fatalf("cold stats = %d hits / %d misses, want 0/60", hits, misses)
	}

	// Warm: nothing changed, every path hits.
	warm, err := m.Derive(st, DeriveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("warm derive diverges")
	}
	if hits, misses := m.Stats(); hits != 60 || misses != 60 {
		t.Fatalf("warm stats = %d hits / %d misses, want 60/60", hits, misses)
	}

	// Mutate one table: only the 10 paths reading it re-solve.
	st.Learn("taa", appir.MACValue(netpkt.MAC{1, 2, 3, 4, 5, 6}), appir.U16Value(7))
	after, err := m.Derive(st, DeriveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantAfter, err := DeriveRules(paths, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, wantAfter) {
		t.Fatal("post-mutation derive diverges from fresh DeriveRules")
	}
	if hits, misses := m.Stats(); hits != 110 || misses != 70 {
		t.Fatalf("selective stats = %d hits / %d misses, want 110/70", hits, misses)
	}

	// Invalidate drops everything.
	m.Invalidate()
	if _, err := m.Derive(st, DeriveOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, misses := m.Stats(); misses != 130 {
		t.Fatalf("post-invalidate misses = %d, want 130", misses)
	}
}

// Memoized derivation must agree with the direct one across the real
// evaluation apps as their states mutate.
func TestMemoDeriveMatchesDirectAcrossMutations(t *testing.T) {
	progs, states := apps.EvaluationSet()
	for i, prog := range progs {
		paths, err := Explore(prog)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		m := NewMemo(paths)
		st := states[i]
		for round := 0; round < 4; round++ {
			got, err := m.Derive(st, DeriveOptions{})
			if err != nil {
				t.Fatalf("%s round %d: %v", prog.Name, round, err)
			}
			want, err := DeriveRules(paths, st)
			if err != nil {
				t.Fatalf("%s round %d: %v", prog.Name, round, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s round %d: memo diverges (%d vs %d rules)",
					prog.Name, round, len(got), len(want))
			}
			// Mutate whatever globals the app reads.
			for _, g := range StateSensitiveVariables(paths) {
				st.Learn(g, appir.MACValue(netpkt.MAC{0, 0, 0, 9, byte(round), byte(i)}),
					appir.U16Value(uint16(round+1)))
			}
		}
	}
}

// The warm path must be dramatically cheaper than the cold path — the
// "repeat Init→Defense transitions near-free" property. The acceptance
// bar is 10×; the test asserts a conservative 3× so slow CI machines
// don't flake, and the benchmarks report the real margin.
func TestMemoWarmDeriveFasterThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	paths, st := genPaths(512, 8, 64)
	m := NewMemo(paths)
	measure := func() time.Duration {
		start := time.Now()
		if _, err := m.Derive(st, DeriveOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	var cold, warm time.Duration
	for i := 0; i < 3; i++ { // best-of-3 to shrug off scheduler noise
		m.Invalidate()
		c := measure()
		w := measure()
		if i == 0 || c < cold {
			cold = c
		}
		if i == 0 || w < warm {
			warm = w
		}
	}
	if warm*3 > cold {
		t.Errorf("warm derive %v not ≥3× faster than cold %v", warm, cold)
	}
}

// Memoized MatchPath: cache hits under unchanged globals, invalidation
// on mutation, agreement with the direct call throughout.
func TestMemoMatchPath(t *testing.T) {
	prog, st := apps.L2Learning()
	paths, err := Explore(prog)
	if err != nil {
		t.Fatal(err)
	}
	st.Learn("macToPort", appir.MACValue(netpkt.MustMAC("00:00:00:00:00:0a")), appir.U16Value(1))
	m := NewMemo(paths)
	pkt := &netpkt.Packet{
		EthSrc:  netpkt.MustMAC("00:00:00:00:00:0b"),
		EthDst:  netpkt.MustMAC("00:00:00:00:00:0a"),
		EthType: netpkt.EtherTypeIPv4,
	}

	direct, err := MatchPath(paths, st, pkt, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.MatchPath(st, pkt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != direct.ID {
		t.Fatalf("memo matched path %d, direct %d", got.ID, direct.ID)
	}
	_, missesBefore := m.Stats()
	if again, _ := m.MatchPath(st, pkt, 2); again.ID != got.ID {
		t.Fatal("repeat query changed paths")
	}
	if _, misses := m.Stats(); misses != missesBefore {
		t.Fatal("repeat query missed the cache")
	}

	// Mutating a referenced global empties the cache and re-resolves.
	st.Learn("macToPort", appir.MACValue(pkt.EthDst), appir.U16Value(9))
	fresh, err := m.MatchPath(st, pkt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := m.Stats(); misses == missesBefore {
		t.Fatal("mutation did not invalidate the MatchPath cache")
	}
	directAfter, err := MatchPath(paths, st, pkt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != directAfter.ID {
		t.Fatalf("post-mutation memo matched path %d, direct %d", fresh.ID, directAfter.ID)
	}
}

// Package symexec implements the paper's two-phase proactive flow rule
// derivation.
//
// Algorithm 1 (offline): Explore symbolically executes a packet_in
// handler with the input fields AND the global variables symbolized,
// traversing every feasible branch and recording each path's condition
// together with its terminal decision.
//
// Algorithm 2 (runtime): DeriveRules assigns the live values of the
// global variables to the recorded path conditions, keeps only the paths
// whose decision is a Modify State Message (a flow rule install), and
// converts each satisfying assignment into concrete proactive flow rules.
package symexec

import (
	"fmt"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
	"floodguard/internal/openflow"
	"floodguard/internal/solver"
)

// maxPaths bounds path explosion in pathological programs.
const maxPaths = 4096

// Path is one feasible execution path of a handler.
type Path struct {
	ID    int
	Conds []appir.Cond
	// CondLearns[i] is the number of Learns (in program order) executed
	// before Conds[i] is evaluated. Handlers that mutate state before
	// branching (l2_learning learns the source before testing the
	// destination) make path satisfaction depend on those writes.
	CondLearns []int
	// Installs holds the rule templates of the path's Modify State
	// Messages; empty for pure packet_out / drop paths.
	Installs []appir.RuleTemplate
	// PacketOuts counts packet_out decisions on the path.
	PacketOuts int
	// Drops reports an explicit drop decision.
	Drops bool
	// Learns records the state mutations on the path (used to identify
	// state-sensitive variables).
	Learns []appir.Learn
}

// String renders the path in "condition -> decision" form.
func (p *Path) String() string {
	decision := "noop"
	switch {
	case len(p.Installs) > 0:
		decision = p.Installs[0].String()
	case p.Drops:
		decision = "drop"
	case p.PacketOuts > 0:
		decision = "packet_out"
	}
	return fmt.Sprintf("path %d: %s -> %s", p.ID, appir.CondsString(p.Conds), decision)
}

// Explore is Algorithm 1: it returns every structurally feasible path of
// the program's handler. It is deterministic and state-free — table
// contents stay symbolic — so it can run offline, before any attack.
func Explore(prog *appir.Program) ([]Path, error) {
	e := &explorer{}
	if err := e.walk(prog.Handler, pathState{}, nil); err != nil {
		return nil, fmt.Errorf("symexec %s: %w", prog.Name, err)
	}
	return e.paths, nil
}

type pathState struct {
	conds      []appir.Cond
	condLearns []int
	installs   []appir.RuleTemplate
	packetOuts int
	drops      bool
	learns     []appir.Learn
}

func (s pathState) withCond(c appir.Cond) pathState {
	out := s
	out.conds = append(append([]appir.Cond{}, s.conds...), c)
	out.condLearns = append(append([]int{}, s.condLearns...), len(s.learns))
	return out
}

type explorer struct {
	paths []Path
}

// walk explores stmts; rest is the statement continuation after the
// current block (needed because an If's branches continue into the
// statements that follow it).
func (e *explorer) walk(stmts []appir.Stmt, st pathState, rest [][]appir.Stmt) error {
	if len(stmts) == 0 {
		if len(rest) > 0 {
			return e.walk(rest[0], st, rest[1:])
		}
		if len(e.paths) >= maxPaths {
			return fmt.Errorf("path explosion: more than %d paths", maxPaths)
		}
		e.paths = append(e.paths, Path{
			ID:         len(e.paths),
			Conds:      st.conds,
			CondLearns: st.condLearns,
			Installs:   st.installs,
			PacketOuts: st.packetOuts,
			Drops:      st.drops,
			Learns:     st.learns,
		})
		return nil
	}
	head, tail := stmts[0], stmts[1:]
	switch x := head.(type) {
	case appir.If:
		cont := append([][]appir.Stmt{tail}, rest...)
		for _, alt := range splitCond(x.Cond, true) {
			branch := st
			feasible := true
			for _, c := range alt {
				branch = branch.withCond(c)
			}
			if !solver.Feasible(branch.conds) {
				feasible = false
			}
			if feasible {
				if err := e.walk(x.Then, branch, cont); err != nil {
					return err
				}
			}
		}
		for _, alt := range splitCond(x.Cond, false) {
			branch := st
			for _, c := range alt {
				branch = branch.withCond(c)
			}
			if !solver.Feasible(branch.conds) {
				continue
			}
			if err := e.walk(x.Else, branch, cont); err != nil {
				return err
			}
		}
		return nil
	case appir.Install:
		st.installs = append(append([]appir.RuleTemplate{}, st.installs...), x.Rule)
	case appir.PacketOut:
		st.packetOuts++
	case appir.Drop:
		st.drops = true
	case appir.Learn:
		st.learns = append(append([]appir.Learn{}, st.learns...), x)
	case appir.Unlearn:
		// state deletion doesn't constrain the path; derivation uses the
		// live table contents at runtime regardless
	case appir.SetScalar:
		// scalar writes don't constrain the path
	default:
		return fmt.Errorf("unsupported statement %T", head)
	}
	return e.walk(tail, st, rest)
}

// splitCond decomposes a (possibly compound) condition into disjoint
// alternatives of atomic conjuncts, for the requested truth value.
// Example: not(A and B) -> [ [¬A], [A, ¬B] ].
func splitCond(e appir.Expr, want bool) [][]appir.Cond {
	switch x := e.(type) {
	case appir.Not:
		return splitCond(x.A, !want)
	case appir.And:
		if want {
			var out [][]appir.Cond
			for _, la := range splitCond(x.A, true) {
				for _, lb := range splitCond(x.B, true) {
					out = append(out, concat(la, lb))
				}
			}
			return out
		}
		// ¬(A∧B) = ¬A ∨ (A∧¬B), disjoint.
		var out [][]appir.Cond
		out = append(out, splitCond(x.A, false)...)
		for _, la := range splitCond(x.A, true) {
			for _, lb := range splitCond(x.B, false) {
				out = append(out, concat(la, lb))
			}
		}
		return out
	case appir.Or:
		if want {
			// A ∨ B = A ∨ (¬A∧B), disjoint.
			var out [][]appir.Cond
			out = append(out, splitCond(x.A, true)...)
			for _, la := range splitCond(x.A, false) {
				for _, lb := range splitCond(x.B, true) {
					out = append(out, concat(la, lb))
				}
			}
			return out
		}
		var out [][]appir.Cond
		for _, la := range splitCond(x.A, false) {
			for _, lb := range splitCond(x.B, false) {
				out = append(out, concat(la, lb))
			}
		}
		return out
	default:
		return [][]appir.Cond{{{Expr: e, Want: want}}}
	}
}

func concat(a, b []appir.Cond) []appir.Cond {
	out := make([]appir.Cond, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// StateSensitiveVariables returns the global variables read on any path —
// the superset the paper symbolizes ("all state sensitive variables are
// global variables to the function").
func StateSensitiveVariables(paths []Path) []string {
	seen := make(map[string]bool)
	var order []string
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				order = append(order, n)
			}
		}
	}
	for _, p := range paths {
		for _, c := range p.Conds {
			add(appir.UsedGlobals(c.Expr))
		}
		for _, r := range p.Installs {
			for _, mf := range r.Match {
				add(appir.UsedGlobals(mf.Val))
			}
			for _, a := range r.Actions {
				add(actionGlobals(a))
			}
		}
	}
	return order
}

func actionGlobals(a appir.ActionTemplate) []string {
	switch x := a.(type) {
	case appir.ActOutput:
		return appir.UsedGlobals(x.Port)
	case appir.ActSetNwDst:
		return appir.UsedGlobals(x.IP)
	case appir.ActSetNwSrc:
		return appir.UsedGlobals(x.IP)
	case appir.ActSetDlDst:
		return appir.UsedGlobals(x.MAC)
	default:
		return nil
	}
}

// ProactiveRule is one derived rule, traceable to its origin path.
type ProactiveRule struct {
	Rule   appir.ConcreteRule
	PathID int
}

// DeriveRules is Algorithm 2: with the globals now holding their live
// values from st, convert every install-terminated path into concrete
// proactive flow rules. Rules derived from prefix bindings are priority-
// boosted by prefix length so that overlapping prefixes resolve like
// longest-prefix match; penalties from unrepresentable negations push a
// rule below its more specific siblings.
func DeriveRules(paths []Path, st *appir.State) ([]ProactiveRule, error) {
	return DeriveRulesOpts(paths, st, DeriveOptions{})
}

// derivePath runs Algorithm 2 for one path: concretize its condition
// against the live state and instantiate every install template under
// every satisfying assignment. Safe to call concurrently for different
// paths as long as each caller owns its arena.
func derivePath(p *Path, st *appir.State, ar *solver.Arena) ([]ProactiveRule, error) {
	if len(p.Installs) == 0 {
		return nil, nil // only Modify State Message paths (Algorithm 2, line 4)
	}
	assignments := solver.ConcretizeArena(p.Conds, st, ar)
	var out []ProactiveRule
	for i := range assignments {
		for _, tmpl := range p.Installs {
			rule, ok, err := evalTemplate(tmpl, &assignments[i], st)
			if err != nil {
				return nil, fmt.Errorf("path %d: %w", p.ID, err)
			}
			if !ok {
				continue // residual: depends on an unbound field
			}
			out = append(out, ProactiveRule{Rule: rule, PathID: p.ID})
		}
	}
	return out, nil
}

// evalTemplate evaluates a rule template under a field assignment. ok is
// false when the template reads a field the assignment does not pin.
func evalTemplate(t appir.RuleTemplate, asg *solver.Assignment, st *appir.State) (appir.ConcreteRule, bool, error) {
	m := openflow.MatchAll()
	// First apply the assignment's own constraints: the path condition is
	// part of the rule's match (e.g. nw_dst == vip). Canonical field
	// order keeps the emitted rule independent of solver internals.
	for _, f := range appir.Fields {
		b, bound := asg.Get(f)
		if !bound {
			continue
		}
		if b.IsPrefix {
			if err := appir.BindMatchField(&m, f, appir.IPValue(b.Prefix), b.PrefixLen); err != nil {
				return appir.ConcreteRule{}, false, err
			}
			continue
		}
		if err := appir.BindMatchField(&m, f, b.Exact, 0); err != nil {
			return appir.ConcreteRule{}, false, err
		}
	}
	// Then the template's explicit match terms.
	for _, mf := range t.Match {
		if fr, ok := mf.Val.(appir.FieldRef); ok && fr.F == mf.F {
			if b, bound := asg.Get(mf.F); bound && b.IsPrefix {
				// Reflexive match on a prefix-bound field: already
				// represented by the assignment's prefix constraint.
				continue
			}
		}
		v, ok, err := evalBound(mf.Val, asg, st)
		if err != nil {
			return appir.ConcreteRule{}, false, err
		}
		if !ok {
			return appir.ConcreteRule{}, false, nil
		}
		if err := appir.BindMatchField(&m, mf.F, v, mf.PrefixLen); err != nil {
			return appir.ConcreteRule{}, false, err
		}
	}
	var actions []openflow.Action
	for _, at := range t.Actions {
		act, ok, err := evalAction(at, asg, st)
		if err != nil {
			return appir.ConcreteRule{}, false, err
		}
		if !ok {
			return appir.ConcreteRule{}, false, nil
		}
		actions = append(actions, act)
	}
	prio := int(t.Priority) + asg.PrefixBits - 2*asg.Penalty
	if prio < 1 {
		prio = 1
	}
	if prio > 0xffff {
		prio = 0xffff
	}
	return appir.ConcreteRule{
		Match:       m,
		Priority:    uint16(prio),
		IdleTimeout: t.IdleTimeout,
		HardTimeout: t.HardTimeout,
		Actions:     actions,
	}, true, nil
}

// evalBound evaluates an expression where field references resolve via
// the assignment. ok is false if an unpinned field is read.
func evalBound(e appir.Expr, asg *solver.Assignment, st *appir.State) (appir.Value, bool, error) {
	switch x := e.(type) {
	case appir.FieldRef:
		b, bound := asg.Get(x.F)
		if !bound {
			return appir.Value{}, false, nil
		}
		if b.IsPrefix {
			// Reading a prefix-bound field as a value: use the prefix
			// base (sound for LPM lookups keyed on the bound prefix).
			return appir.IPValue(b.Prefix), true, nil
		}
		return b.Exact, true, nil
	case appir.Const:
		return x.V, true, nil
	case appir.ScalarRef:
		v, ok := st.Scalar(x.Name)
		if !ok {
			return appir.Value{}, false, fmt.Errorf("scalar %s unset", x.Name)
		}
		return v, true, nil
	case appir.Lookup:
		k, ok, err := evalBound(x.Key, asg, st)
		if err != nil || !ok {
			return appir.Value{}, ok, err
		}
		v, found := st.LookupTable(x.Table, k)
		if !found {
			return appir.Value{}, false, nil
		}
		return v, true, nil
	case appir.LookupPrefix:
		k, ok, err := evalBound(x.Key, asg, st)
		if err != nil || !ok {
			return appir.Value{}, ok, err
		}
		v, found := st.LookupLPM(x.Table, k)
		if !found {
			return appir.Value{}, false, nil
		}
		return v, true, nil
	default:
		return appir.Value{}, false, fmt.Errorf("unsupported template expression %s", e)
	}
}

func evalAction(at appir.ActionTemplate, asg *solver.Assignment, st *appir.State) (openflow.Action, bool, error) {
	switch x := at.(type) {
	case appir.ActOutput:
		v, ok, err := evalBound(x.Port, asg, st)
		if err != nil || !ok {
			return nil, ok, err
		}
		return openflow.Output(v.U16()), true, nil
	case appir.ActFlood:
		return openflow.Output(openflow.PortFlood), true, nil
	case appir.ActSetNwDst:
		v, ok, err := evalBound(x.IP, asg, st)
		if err != nil || !ok {
			return nil, ok, err
		}
		return openflow.ActionSetNwDst{IP: v.IP()}, true, nil
	case appir.ActSetNwSrc:
		v, ok, err := evalBound(x.IP, asg, st)
		if err != nil || !ok {
			return nil, ok, err
		}
		return openflow.ActionSetNwSrc{IP: v.IP()}, true, nil
	case appir.ActSetDlDst:
		v, ok, err := evalBound(x.MAC, asg, st)
		if err != nil || !ok {
			return nil, ok, err
		}
		return openflow.ActionSetDlDst{MAC: v.MAC()}, true, nil
	default:
		return nil, false, fmt.Errorf("unsupported action template %T", at)
	}
}

// MatchPath finds the unique path whose condition a concrete packet
// satisfies under the given state — the concrete-symbolic correspondence
// used in soundness tests. Learns that the handler executes before a
// condition are replayed on a cloned state so that self-referential
// packets (e.g. src == dst under l2_learning) resolve like the concrete
// interpreter. The given state is never mutated.
func MatchPath(paths []Path, st *appir.State, pkt *netpkt.Packet, inPort uint16) (*Path, error) {
	var found *Path
	for i := range paths {
		p := &paths[i]
		sat := true
		env := &appir.Env{State: st, Packet: pkt, InPort: inPort}
		applied := 0
		for ci, c := range p.Conds {
			for applied < p.CondLearns[ci] && applied < len(p.Learns) {
				l := p.Learns[applied]
				key, err := appir.EvalExpr(l.Key, env)
				if err != nil {
					return nil, err
				}
				val, err := appir.EvalExpr(l.Val, env)
				if err != nil {
					return nil, err
				}
				if env.State == st {
					env.State = st.Clone()
				}
				env.State.Learn(l.Table, key, val)
				applied++
			}
			v, err := appir.EvalExpr(c.Expr, env)
			if err != nil {
				return nil, err
			}
			if v.Bool() != c.Want {
				sat = false
				break
			}
		}
		if sat {
			if found != nil {
				return nil, fmt.Errorf("packet satisfies both path %d and path %d", found.ID, paths[i].ID)
			}
			found = &paths[i]
		}
	}
	if found == nil {
		return nil, fmt.Errorf("packet satisfies no path")
	}
	return found, nil
}

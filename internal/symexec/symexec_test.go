package symexec

import (
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/netpkt"
	"floodguard/internal/openflow"
)

func explore(t *testing.T, prog *appir.Program) []Path {
	t.Helper()
	paths, err := Explore(prog)
	if err != nil {
		t.Fatalf("Explore(%s): %v", prog.Name, err)
	}
	return paths
}

func TestExploreL2LearningFindsThreeBranches(t *testing.T) {
	prog, _ := apps.L2Learning()
	paths := explore(t, prog)
	// Figure 5: broadcast / unknown / known — exactly three paths.
	if len(paths) != 3 {
		for _, p := range paths {
			t.Log(p.String())
		}
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	installPaths := 0
	for _, p := range paths {
		if len(p.Installs) > 0 {
			installPaths++
		}
		if len(p.Learns) != 1 {
			t.Errorf("path %d learns = %d, want 1 (unconditional learn)", p.ID, len(p.Learns))
		}
	}
	if installPaths != 1 {
		t.Errorf("install-terminated paths = %d, want 1", installPaths)
	}
}

func TestExploreIdentifiesStateSensitiveVariables(t *testing.T) {
	// The paper's Table III, recovered by analysis rather than
	// declaration.
	want := map[string][]string{
		"l2_learning": {"macToPort"},
		"l3_learning": {"ipToPort"},
		"mac_blocker": {"blockedMACs"},
		"of_firewall": {"blockedTCPPorts", "blockedSrcNets", "routeTable"},
	}
	progs := []func() (*appir.Program, *appir.State){
		apps.L2Learning, apps.L3Learning, apps.MACBlocker, apps.OFFirewall,
	}
	for _, mk := range progs {
		prog, _ := mk()
		got := StateSensitiveVariables(explore(t, prog))
		w := want[prog.Name]
		if len(got) < len(w) {
			t.Errorf("%s: found %v, want at least %v", prog.Name, got, w)
			continue
		}
		gotSet := make(map[string]bool, len(got))
		for _, g := range got {
			gotSet[g] = true
		}
		for _, name := range w {
			if !gotSet[name] {
				t.Errorf("%s: missing state-sensitive variable %s", prog.Name, name)
			}
		}
	}
}

func TestExploreARPHubHasNoStateSensitiveVariables(t *testing.T) {
	prog, _ := apps.ARPHub()
	if got := StateSensitiveVariables(explore(t, prog)); len(got) != 0 {
		t.Errorf("arp_hub analysis found globals %v, want none (static app)", got)
	}
}

func TestDeriveRulesL2Learning(t *testing.T) {
	prog, st := apps.L2Learning()
	paths := explore(t, prog)

	// Empty state: no MACs learned, no proactive rules (the third branch
	// is unreachable), mirroring the paper's observation that the rule
	// count tracks the macToPort contents.
	rules, err := DeriveRules(paths, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("rules from empty state = %d, want 0", len(rules))
	}

	// Learn two hosts; expect exactly two proactive rules.
	macA := netpkt.MustMAC("00:00:00:00:00:0a")
	macB := netpkt.MustMAC("00:00:00:00:00:0b")
	st.Learn("macToPort", appir.MACValue(macA), appir.U16Value(1))
	st.Learn("macToPort", appir.MACValue(macB), appir.U16Value(2))
	rules, err = DeriveRules(paths, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2 (one per learned MAC)", len(rules))
	}
	byPort := make(map[netpkt.MAC]uint16)
	for _, r := range rules {
		out, ok := r.Rule.Actions[0].(openflow.ActionOutput)
		if !ok {
			t.Fatalf("rule action = %v", r.Rule.Actions)
		}
		byPort[r.Rule.Match.DlDst] = out.Port
		if r.Rule.Match.Wildcards&openflow.WildDlDst != 0 {
			t.Error("dl_dst left wildcarded")
		}
	}
	if byPort[macA] != 1 || byPort[macB] != 2 {
		t.Errorf("derived mapping = %v", byPort)
	}
}

func TestDeriveRulesIPBalancer(t *testing.T) {
	cfg := apps.DefaultIPBalancerConfig()
	prog, st := apps.IPBalancer(cfg)
	rules, err := DeriveRules(explore(t, prog), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2 (the two halves)", len(rules))
	}
	for _, r := range rules {
		if r.Rule.Match.NwSrcMaskLen() != 1 {
			t.Errorf("nw_src mask = %d, want /1", r.Rule.Match.NwSrcMaskLen())
		}
		if got := r.Rule.Match.NwDst; got != cfg.VIP {
			t.Errorf("nw_dst = %v, want VIP", got)
		}
	}
	// After the Figure 8 repartition, re-derivation must follow.
	st.SetScalar("replicaHi", appir.IPValue(cfg.ReplicaLo))
	rules2, err := DeriveRules(explore(t, prog), st)
	if err != nil {
		t.Fatal(err)
	}
	var hiRewrite netpkt.IPv4
	for _, r := range rules2 {
		if r.Rule.Match.NwSrc.HighBit() {
			hiRewrite = r.Rule.Actions[0].(openflow.ActionSetNwDst).IP
		}
	}
	if hiRewrite != cfg.ReplicaLo {
		t.Errorf("after repartition, high half rewrites to %v, want %v", hiRewrite, cfg.ReplicaLo)
	}
}

func TestDeriveRulesOFFirewallPriorityOrdering(t *testing.T) {
	prog, st := apps.OFFirewall()
	st.Learn("blockedTCPPorts", appir.U16Value(23), appir.BoolValue(true))
	st.AddPrefix("blockedSrcNets", appir.IPValue(netpkt.MustIPv4("203.0.113.0")), 24, appir.BoolValue(true))
	st.AddPrefix("routeTable", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(4))

	rules, err := DeriveRules(explore(t, prog), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules derived")
	}
	var dropMax, fwdMax uint16
	for _, r := range rules {
		if len(r.Rule.Actions) == 0 {
			if r.Rule.Priority > dropMax {
				dropMax = r.Rule.Priority
			}
		} else if r.Rule.Priority > fwdMax {
			fwdMax = r.Rule.Priority
		}
	}
	if dropMax == 0 || fwdMax == 0 {
		t.Fatalf("expected both drop and forward rules, got dropMax=%d fwdMax=%d", dropMax, fwdMax)
	}
	if dropMax <= fwdMax {
		t.Errorf("drop priority %d not above forward priority %d", dropMax, fwdMax)
	}

	// Semantics check: a packet from the blocked net to a routed
	// destination must hit a drop rule first when rules are ranked by
	// priority.
	evil := netpkt.Packet{
		EthType: netpkt.EtherTypeIPv4,
		NwSrc:   netpkt.MustIPv4("203.0.113.9"),
		NwDst:   netpkt.MustIPv4("10.1.1.1"),
		NwProto: netpkt.ProtoUDP,
	}
	best := bestRule(rules, &evil, 1)
	if best == nil {
		t.Fatal("no rule matches the blocked-source packet")
	}
	if len(best.Rule.Actions) != 0 {
		t.Errorf("best rule for blocked source is %v, want drop", best.Rule)
	}
}

// bestRule returns the highest-priority derived rule matching p.
func bestRule(rules []ProactiveRule, p *netpkt.Packet, inPort uint16) *ProactiveRule {
	var best *ProactiveRule
	for i := range rules {
		r := &rules[i]
		if r.Rule.Match.Matches(p, inPort) {
			if best == nil || r.Rule.Priority > best.Rule.Priority {
				best = r
			}
		}
	}
	return best
}

func TestDeriveRulesRouteLPMViaPriorities(t *testing.T) {
	prog, st := apps.Route()
	st.AddPrefix("routingTable", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
	st.AddPrefix("routingTable", appir.IPValue(netpkt.MustIPv4("10.1.0.0")), 16, appir.U16Value(2))
	rules, err := DeriveRules(explore(t, prog), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	p := netpkt.Packet{EthType: netpkt.EtherTypeIPv4, NwDst: netpkt.MustIPv4("10.1.9.9"), NwProto: netpkt.ProtoUDP}
	best := bestRule(rules, &p, 1)
	if best == nil {
		t.Fatal("no matching rule")
	}
	if got := best.Rule.Actions[0].(openflow.ActionOutput).Port; got != 2 {
		t.Errorf("LPM-by-priority picked port %d, want 2 (the /16)", got)
	}
}

func TestMatchPathUniqueness(t *testing.T) {
	progs, states := apps.EvaluationSet()
	gen := netpkt.NewSpoofGen(99, netpkt.FloodMixed, 16)
	for i, prog := range progs {
		paths := explore(t, prog)
		st := states[i]
		for j := 0; j < 100; j++ {
			p := gen.Next()
			if _, err := MatchPath(paths, st, &p, uint16(j%4+1)); err != nil {
				t.Errorf("%s: packet %d: %v", prog.Name, j, err)
			}
		}
	}
}

// TestSymbolicConcreteCorrespondence is the core soundness property: for
// random packets and states, the concrete interpreter's decision must
// equal the decision of the unique path whose condition the packet
// satisfies.
func TestSymbolicConcreteCorrespondence(t *testing.T) {
	progs, states := apps.EvaluationSet()
	gen := netpkt.NewSpoofGen(7, netpkt.FloodMixed, 16)
	benign := []netpkt.Packet{}
	// Mix in structured traffic so install branches get exercised.
	for i := 0; i < 20; i++ {
		benign = append(benign, netpkt.Packet{
			EthSrc:  netpkt.MACFromUint64(uint64(i + 1)),
			EthDst:  netpkt.MACFromUint64(uint64(i%5 + 1)),
			EthType: netpkt.EtherTypeIPv4,
			NwSrc:   netpkt.IPv4(0x0a000000 + uint32(i)),
			NwDst:   netpkt.IPv4(0x0a000000 + uint32(i%5)),
			NwProto: netpkt.ProtoUDP,
			TpSrc:   1000, TpDst: 2000,
		})
	}
	for idx, prog := range progs {
		paths := explore(t, prog)
		st := states[idx]
		for j := 0; j < 300; j++ {
			var pkt netpkt.Packet
			if j%3 == 0 {
				pkt = benign[j%len(benign)]
			} else {
				pkt = gen.Next()
			}
			inPort := uint16(j%4 + 1)

			// Symbolic side first (before Exec mutates state).
			path, err := MatchPath(paths, st, &pkt, inPort)
			if err != nil {
				t.Fatalf("%s: MatchPath: %v", prog.Name, err)
			}
			d, err := appir.Exec(prog, st, &pkt, inPort)
			if err != nil {
				t.Fatalf("%s: Exec: %v", prog.Name, err)
			}
			if len(d.Installs) != len(path.Installs) {
				t.Fatalf("%s pkt %d: concrete installs %d != symbolic installs %d (path %d)",
					prog.Name, j, len(d.Installs), len(path.Installs), path.ID)
			}
			if d.Dropped != path.Drops {
				t.Fatalf("%s pkt %d: concrete drop %t != symbolic %t", prog.Name, j, d.Dropped, path.Drops)
			}
		}
	}
}

// TestDerivedRuleSoundness: any packet matching a derived proactive rule,
// executed concretely, must install a rule with identical actions — the
// proactive rule anticipates exactly what the app would do.
func TestDerivedRuleSoundness(t *testing.T) {
	prog, st := apps.L2Learning()
	for i := 1; i <= 8; i++ {
		st.Learn("macToPort", appir.MACValue(netpkt.MACFromUint64(uint64(i))), appir.U16Value(uint16(i%4+1)))
	}
	paths := explore(t, prog)
	rules, err := DeriveRules(paths, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 8 {
		t.Fatalf("rules = %d, want 8", len(rules))
	}
	for _, r := range rules {
		// Construct a packet matching the rule.
		pkt := netpkt.Packet{
			EthSrc:  netpkt.MustMAC("00:00:00:00:00:63"),
			EthDst:  r.Rule.Match.DlDst,
			EthType: netpkt.EtherTypeIPv4,
			NwSrc:   netpkt.MustIPv4("10.0.0.99"),
			NwDst:   netpkt.MustIPv4("10.0.0.1"),
			NwProto: netpkt.ProtoUDP,
		}
		if !r.Rule.Match.Matches(&pkt, 5) {
			t.Fatalf("constructed packet does not match rule %v", r.Rule)
		}
		d, err := appir.Exec(prog, st, &pkt, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Installs) != 1 {
			t.Fatalf("concrete execution installed %d rules", len(d.Installs))
		}
		want := openflow.ActionsString(d.Installs[0].Actions)
		got := openflow.ActionsString(r.Rule.Actions)
		if got != want {
			t.Errorf("rule actions %s != concrete actions %s", got, want)
		}
	}
}

func TestPathString(t *testing.T) {
	prog, _ := apps.L2Learning()
	paths := explore(t, prog)
	for _, p := range paths {
		if p.String() == "" {
			t.Error("empty path string")
		}
	}
}

func TestExploreAllAppsBounded(t *testing.T) {
	progs, _ := apps.EvaluationSet()
	for _, prog := range progs {
		paths := explore(t, prog)
		if len(paths) == 0 {
			t.Errorf("%s: no paths", prog.Name)
		}
		if len(paths) > 64 {
			t.Errorf("%s: suspicious path count %d", prog.Name, len(paths))
		}
	}
}

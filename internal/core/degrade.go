package core

// Graceful degradation: the sideband channel to the data plane cache can
// fail independently of the OpenFlow control channel. Losing it while
// defending must not mean losing the controller — the guard withdraws
// migration (table-miss traffic reaches the controller directly again,
// the paper's pre-migration behavior) and sheds everything beyond a
// fixed per-window budget in packetInHook, then re-migrates as soon as
// the channel heals. The Defense↔Degraded edges extend Figure 3.

// SetCacheReachable reports sideband health to the guard. Callers wire
// it to their transport's liveness signal (e.g. cachebox's Redial
// OnStateChange, marshalled onto the engine goroutine). It must be
// invoked on the engine/runner goroutine, like every other guard entry
// point. Transitions are edge-triggered: repeated reports of the same
// health are no-ops.
func (g *Guard) SetCacheReachable(ok bool) {
	if g.cacheReachable == ok {
		return
	}
	g.cacheReachable = ok
	if !ok {
		// Replay rides the sideband: without it the caches can only
		// queue, whatever state we are in.
		for _, c := range g.caches {
			c.SetRate(0)
		}
		if g.fsm.State() == StateDefense {
			g.degrade()
		}
		return
	}
	switch g.fsm.State() {
	case StateDegraded:
		g.heal()
	case StateFinish:
		// Drain resumes at the floor rate; adjustRate steers from there.
		for _, c := range g.caches {
			c.SetRate(g.cfg.RateLimit.MinPPS)
		}
	}
}

// CacheReachable returns the last reported sideband health.
func (g *Guard) CacheReachable() bool { return g.cacheReachable }

// degrade enters the direct-fallback mode: Defense → Degraded,
// migration withdrawn so packets flow straight to the controller, cache
// replay parked. Only packetInHook's budget stands between the flood
// and the serial executor now.
func (g *Guard) degrade() {
	if err := g.fsm.to(StateDegraded, g.eng.Now(), "sideband to data plane cache lost; direct rate-limited fallback"); err != nil {
		return
	}
	g.degradedEntries.Inc()
	g.degradedAllowed = 0
	for _, ps := range g.switches {
		g.removeMigration(ps)
	}
	for _, c := range g.caches {
		c.SetRate(0)
	}
}

// heal re-arms the real defense: Degraded → Defense, migration rules
// reinstalled, replay restarted at the floor rate.
func (g *Guard) heal() {
	if err := g.fsm.to(StateDefense, g.eng.Now(), "sideband to data plane cache healed; re-migrating"); err != nil {
		return
	}
	for _, ps := range g.switches {
		g.installMigration(ps)
	}
	for _, c := range g.caches {
		c.SetRate(g.cfg.RateLimit.MinPPS)
	}
}

// degradedWindowBudget is how many packet_ins the degraded fallback
// admits per detection window — the DegradedMaxPPS ceiling (defaulting
// to the replay path's MaxPPS) expressed in window units, floored at
// one so detection never starves entirely.
func (g *Guard) degradedWindowBudget() float64 {
	pps := g.cfg.DegradedMaxPPS
	if pps <= 0 {
		pps = g.cfg.RateLimit.MaxPPS
	}
	b := pps * g.cfg.Detection.SampleInterval.Seconds()
	if b < 1 {
		b = 1
	}
	return b
}

package core

import (
	"fmt"
	"math"
	"time"

	"floodguard/internal/attrib"
	"floodguard/internal/controller"
	"floodguard/internal/dpcache"
	"floodguard/internal/flowtable"
	"floodguard/internal/journal"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/openflow"
	"floodguard/internal/switchsim"
	"floodguard/internal/telemetry"
)

// protectedSwitch is one datapath under FloodGuard's protection.
type protectedSwitch struct {
	sw    *switchsim.Switch
	dp    controller.Datapath
	cache *dpcache.Cache

	ingressPorts   []uint16 // from FeaturesReply, excluding the cache port
	migrationRules []openflow.FlowMod
	migrated       bool

	// Selective-migration state: diversion rules per individually
	// migrated port, plus the fallback port diverted when detection fires
	// before any port has crossed the blame threshold.
	portRules   map[uint16][]openflow.FlowMod
	fallback    uint16
	hasFallback bool

	bufferFrac float64 // latest utilization from StatsReply
}

// Guard is one FloodGuard deployment: it extends a controller with the
// proactive flow rule analyzer and the packet migration module, and
// coordinates them through the Figure 3 state machine.
type Guard struct {
	cfg  Config
	eng  *netsim.Engine
	ctrl *controller.Controller

	fsm      *fsm
	analyzer *Analyzer
	// attrib, when armed by cfg.Attribution.Enabled, blames ports and
	// sources; nil otherwise.
	attrib *attrib.Attributor

	switches map[uint64]*protectedSwitch
	caches   []*dpcache.Cache
	cacheTbl *flowtable.Table // §IV.E cache-resident rule table

	// jrec, when armed by SetJournal, records FSM transitions and
	// selective migrate/unmigrate actions. All record sites run on the
	// engine goroutine, satisfying the recorder's single-producer rule.
	jrec *journal.Recorder

	// Detector state.
	rateEWMA      *netsim.EWMA
	pktInsSample  int
	overSamples   int
	lastOver      time.Time
	lastMigrated  uint64 // cache Enqueued at previous sample
	migrationRate float64
	replaying     bool

	detectTicker *netsim.Ticker
	trackTicker  *netsim.Ticker
	rateTicker   *netsim.Ticker
	statsTicker  *netsim.Ticker
	drainTicker  *netsim.Ticker

	// Async derivation state (cfg.Analyzer.AsyncDerive): at most one
	// background derivation in flight, completed by derivePoll on the
	// engine goroutine.
	deriveCh   <-chan *deriveOutcome
	derivePoll *netsim.Ticker

	// Degradation state: sideband health as reported through
	// SetCacheReachable, and the direct-dispatch budget consumed in the
	// current detection window while degraded.
	cacheReachable  bool
	degradedAllowed int

	// Counters (atomics: safe to read from any goroutine through the
	// accessor methods or a telemetry registry while the engine runs).
	detectedAttacks telemetry.Counter
	replayed        telemetry.Counter
	degradedEntries telemetry.Counter
	degradedDrops   telemetry.Counter
	packetIns       telemetry.Counter
	lastReplayNanos telemetry.Gauge

	// Per-window detector gauges, pushed once per detection sample so a
	// scrape never touches engine-owned state.
	stateGauge telemetry.Gauge
	gRate      telemetry.FloatGauge
	gMigRate   telemetry.FloatGauge
	gScore     telemetry.FloatGauge
	// gMigratedPorts mirrors the number of individually diverted ports
	// across all switches (selective mode; blanket migration leaves it 0).
	gMigratedPorts telemetry.Gauge

	// events is the FSM transition log (always on; ring of eventLogSize).
	events *telemetry.EventLog
	// trace, when armed by Instrument, samples packet lifecycles.
	trace *telemetry.Tracer

	// ReplayObserver, when set, sees every replayed packet with its
	// cache residence time (experiment instrumentation).
	ReplayObserver func(origin uint64, inPort uint16, pkt *netpkt.Packet, queued time.Duration)
}

// eventLogSize bounds the FSM transition ring.
const eventLogSize = 256

// DetectedAttacks returns how many times the detector has fired.
func (g *Guard) DetectedAttacks() uint64 { return g.detectedAttacks.Value() }

// Replayed returns the number of packets re-raised from the cache.
func (g *Guard) Replayed() uint64 { return g.replayed.Value() }

// DegradedEntries counts Defense→Degraded transitions.
func (g *Guard) DegradedEntries() uint64 { return g.degradedEntries.Value() }

// DegradedDrops counts packet_ins shed by the degraded direct rate
// limiter (beyond-budget table-miss traffic while the cache is
// unreachable).
func (g *Guard) DegradedDrops() uint64 { return g.degradedDrops.Value() }

// LastReplayDelay is the cache residence time of the most recently
// replayed packet (Table IV's data plane cache column).
func (g *Guard) LastReplayDelay() time.Duration {
	return time.Duration(g.lastReplayNanos.Value())
}

// Events returns the retained FSM transition events, oldest first.
func (g *Guard) Events() []telemetry.Event { return g.events.Events() }

// NewGuard attaches FloodGuard to a controller. Register all applications
// on the controller before calling Protect/Start.
func NewGuard(eng *netsim.Engine, ctrl *controller.Controller, cfg Config) (*Guard, error) {
	an, err := NewAnalyzer(cfg.Analyzer, ctrl.Apps())
	if err != nil {
		return nil, err
	}
	g := &Guard{
		cfg:            cfg,
		eng:            eng,
		ctrl:           ctrl,
		fsm:            newFSM(),
		analyzer:       an,
		switches:       make(map[uint64]*protectedSwitch),
		rateEWMA:       netsim.NewEWMA(cfg.Detection.RateEWMAAlpha),
		cacheReachable: true,
		events:         telemetry.NewEventLog(eventLogSize),
	}
	g.stateGauge.Set(int64(StateIdle))
	g.fsm.onEnter = g.onTransition
	if cfg.Attribution.Enabled {
		g.attrib = attrib.New(cfg.Attribution.Params)
	}
	// Shared default cache (paper §IV.E: "ideally, we only need to deploy
	// one data plane cache to serve all switches").
	g.caches = []*dpcache.Cache{dpcache.New(eng, cfg.Cache, g)}
	g.armAttribution(g.caches[0])
	if cfg.Analyzer.RulesInCache {
		g.cacheTbl = flowtable.New(0)
		for _, c := range g.caches {
			c.UseRuleTable(g.cacheTbl)
		}
	}
	ctrl.AddHook(g.packetInHook)
	ctrl.AddMessageListener(g.onMessage)
	return g, nil
}

// AddCache creates an additional data plane cache for Protect to bind
// switches to (the §IV.E scalability option: one cache per subnet/rack).
func (g *Guard) AddCache() *dpcache.Cache {
	c := dpcache.New(g.eng, g.cfg.Cache, g)
	if g.cacheTbl != nil {
		c.UseRuleTable(g.cacheTbl)
	}
	g.armAttribution(c)
	g.caches = append(g.caches, c)
	return c
}

// armAttribution wires the attribution engine into a cache: verdicts
// split the replay queues (benign-priority scheduling) and every
// migrated packet feeds the blame detectors, which otherwise go blind on
// diverted ports.
func (g *Guard) armAttribution(c *dpcache.Cache) {
	if g.attrib == nil {
		return
	}
	c.SetHinter(g.attrib)
	c.SetObserver(g.attrib.ObservePacket)
}

// Attribution exposes the attribution engine (nil unless
// cfg.Attribution.Enabled).
func (g *Guard) Attribution() *attrib.Attributor { return g.attrib }

// selectiveActive reports whether per-port selective migration governs
// rule installation. The DisableINPORTTag ablation forces blanket mode:
// its single untagged rule cannot discriminate ports.
func (g *Guard) selectiveActive() bool {
	return g.attrib != nil && g.cfg.Attribution.Selective && !g.cfg.DisableINPORTTag
}

// PortMigrated reports whether an ingress port currently routes its
// table-miss traffic to the cache: its own diversion rules in selective
// mode, the switch-wide rule set in blanket mode. Engine goroutine only.
func (g *Guard) PortMigrated(dpid uint64, port uint16) bool {
	ps, ok := g.switches[dpid]
	if !ok {
		return false
	}
	if g.selectiveActive() {
		_, ok := ps.portRules[port]
		return ok
	}
	return ps.migrated
}

// MigratedPortCount returns how many ports are individually diverted
// (selective mode; 0 under blanket migration). Safe from any goroutine.
func (g *Guard) MigratedPortCount() int { return int(g.gMigratedPorts.Value()) }

// Caches returns the guard's data plane caches.
func (g *Guard) Caches() []*dpcache.Cache { return g.caches }

// Analyzer exposes the proactive flow rule analyzer.
func (g *Guard) Analyzer() *Analyzer { return g.analyzer }

// State returns the FSM state.
func (g *Guard) State() FSMState { return g.fsm.State() }

// onTransition records every FSM move into the event log with the key
// gauges at transition time; it runs on the engine goroutine, where all
// detector state is safe to read.
func (g *Guard) onTransition(tr Transition) {
	g.stateGauge.Set(int64(tr.To))
	var backlog int
	var enq uint64
	for _, c := range g.caches {
		s := c.Stats()
		backlog += s.Backlog
		enq += s.Enqueued
	}
	g.events.Append(telemetry.Event{
		Time:   tr.At,
		From:   tr.From.String(),
		To:     tr.To.String(),
		Reason: tr.Reason,
		Fields: map[string]float64{
			"cache_backlog":      float64(backlog),
			"cache_enqueued":     float64(enq),
			"packet_in_rate_pps": g.rateEWMA.Value(),
			"migration_rate_pps": g.migrationRate,
			"replayed":           float64(g.replayed.Value()),
			"degraded_drops":     float64(g.degradedDrops.Value()),
		},
	})
	g.jrec.Record(journal.KindFSM, uint8(tr.To), uint8(tr.From), 0, 0,
		g.rateEWMA.Value(), float64(backlog), g.migrationRate)
}

// SetJournal attaches a decision journal (journal.ForEngine layout):
// the guard takes the control recorder for FSM and migration events and
// forwards the attribution and cache recorders to its components. Call
// before Start, from the construction goroutine.
func (g *Guard) SetJournal(j *journal.Journal) {
	g.jrec = j.ControlRec()
	if g.attrib != nil {
		g.attrib.SetJournal(j.AttribRec())
	}
	for _, c := range g.caches {
		// All caches run on the one engine goroutine, so sharing the
		// cache-stage recorder keeps the single-producer rule intact.
		c.SetJournal(j.CacheRec())
	}
}

// Instrument attaches the guard, its FSM event log, its caches, and its
// controller to reg, and arms sampled pipeline tracing (one in
// cfg.TraceSampleEvery packets). It returns the tracer so deployments
// can wire it into their switches too. Call once, before Start.
func (g *Guard) Instrument(reg *telemetry.Registry) *telemetry.Tracer {
	every := g.cfg.TraceSampleEvery
	if every <= 0 {
		every = DefaultTraceSampleEvery
	}
	g.trace = telemetry.NewTracer(reg, every)
	for i, c := range g.caches {
		c.SetTracer(g.trace)
		prefix := "fg_cache"
		if i > 0 {
			prefix = fmt.Sprintf("fg_cache%d", i)
		}
		c.Register(reg, prefix)
	}
	if g.cacheTbl != nil {
		g.cacheTbl.Register(reg, "fg_cachetbl")
	}
	reg.RegisterCounter("fg_guard_attacks_detected_total",
		"Times the saturation detector fired.", &g.detectedAttacks)
	reg.RegisterCounter("fg_guard_replayed_total",
		"Packets re-raised from the data plane cache.", &g.replayed)
	reg.RegisterCounter("fg_guard_degraded_entries_total",
		"Defense to Degraded transitions.", &g.degradedEntries)
	reg.RegisterCounter("fg_guard_degraded_drops_total",
		"Packet_ins shed by the degraded direct rate limiter.", &g.degradedDrops)
	reg.RegisterCounter("fg_guard_packet_ins_total",
		"Data-plane packet_ins observed by the detector (replays excluded).", &g.packetIns)
	reg.RegisterGauge("fg_guard_state",
		"Current FSM state (1=idle 2=init 3=defense 4=finish 5=degraded).", &g.stateGauge)
	reg.RegisterFloatGauge("fg_guard_packet_in_rate_pps",
		"Smoothed packet_in rate per detection window.", &g.gRate)
	reg.RegisterFloatGauge("fg_guard_migration_rate_pps",
		"Rate of packets diverted into the caches.", &g.gMigRate)
	reg.RegisterFloatGauge("fg_guard_score",
		"Composite detection score (>=1 triggers).", &g.gScore)
	reg.RegisterGauge("fg_guard_migrated_ports",
		"Ports individually diverted to the cache (selective migration).", &g.gMigratedPorts)
	if g.attrib != nil {
		g.attrib.Register(reg, "fg_attrib")
	}
	reg.GaugeFunc("fg_guard_last_replay_delay_seconds",
		"Cache residence time of the most recent replay.", func() float64 {
			return time.Duration(g.lastReplayNanos.Value()).Seconds()
		})
	reg.RegisterEventLog("fsm_transitions", g.events)
	g.analyzer.Register(reg)
	g.ctrl.Instrument(reg, "fg_controller")
	g.ctrl.SetTracer(g.trace)
	return g.trace
}

// Transitions returns the FSM history.
func (g *Guard) Transitions() []Transition { return g.fsm.History() }

// Protect places a switch under FloodGuard: its data plane cache is
// attached on cfg.CachePort and migration is armed. Call before Start.
// The switch must already be bound to the controller.
func (g *Guard) Protect(sw *switchsim.Switch) error {
	return g.ProtectWithCache(sw, g.caches[0])
}

// ProtectWithCache is Protect with an explicit cache assignment.
func (g *Guard) ProtectWithCache(sw *switchsim.Switch, cache *dpcache.Cache) error {
	dp, ok := g.ctrl.Datapath(sw.DPID)
	if !ok {
		return fmt.Errorf("floodguard: datapath %#x is not connected to the controller", sw.DPID)
	}
	if sw.DPID == 0 {
		return fmt.Errorf("floodguard: datapath id 0 is reserved")
	}
	ps := &protectedSwitch{sw: sw, dp: dp, cache: cache, portRules: make(map[uint16][]openflow.FlowMod)}
	sw.AttachPort(g.cfg.CachePort, cache.Adapter(sw.DPID), 1e9, 100*time.Microsecond)
	sw.SetNoFlood(g.cfg.CachePort, true)
	for _, p := range sw.Ports() {
		if p != g.cfg.CachePort {
			ps.ingressPorts = append(ps.ingressPorts, p)
		}
	}
	g.switches[sw.DPID] = ps
	return nil
}

// Start runs the offline preparation (Algorithm 1 for every app) and arms
// the monitoring component. Under normal circumstances only monitoring is
// active; everything else stays dormant (§II.D design objectives).
func (g *Guard) Start() error {
	if err := g.analyzer.Prepare(); err != nil {
		return err
	}
	for _, c := range g.caches {
		c.Start()
		c.SetRate(0) // dormant until an attack is detected
	}
	g.detectTicker = g.eng.NewTicker(g.cfg.Detection.SampleInterval, g.detect)
	g.statsTicker = g.eng.NewTicker(g.cfg.StatsPollInterval, g.pollStats)
	return nil
}

// Stop disarms all periodic work.
func (g *Guard) Stop() {
	for _, t := range []*netsim.Ticker{g.detectTicker, g.trackTicker, g.rateTicker, g.statsTicker, g.drainTicker, g.derivePoll} {
		if t != nil {
			t.Stop()
		}
	}
	for _, c := range g.caches {
		c.Stop()
	}
}

// packetInHook observes every packet_in before app dispatch (detection
// signal). Replayed packets are excluded from the rate: they are under
// the agent's own control. While degraded, the hook is also the direct
// rate limiter: with the cache unreachable, table-miss traffic reaches
// the controller unmigrated again, and everything beyond the per-window
// budget is shed here so the serial executor keeps its headroom.
func (g *Guard) packetInHook(ev *controller.PacketInEvent) bool {
	if g.replaying {
		return true
	}
	g.pktInsSample++
	g.packetIns.Inc()
	if g.attrib != nil {
		// Direct (unmigrated) table-miss traffic; the migrated share is
		// observed at cache ingest, so the two paths never double-count.
		g.attrib.ObservePacket(ev.Datapath.DPID(), ev.Msg.InPort, &ev.Packet)
	}
	if g.fsm.State() == StateDegraded {
		if float64(g.degradedAllowed) >= g.degradedWindowBudget() {
			g.degradedDrops.Inc()
			return false
		}
		g.degradedAllowed++
	}
	return true
}

// onMessage captures FeaturesReply (port inventory) and StatsReply
// (utilization) from the switches.
func (g *Guard) onMessage(dp controller.Datapath, f openflow.Framed) {
	switch m := f.Msg.(type) {
	case openflow.FeaturesReply:
		ps, ok := g.switches[dp.DPID()]
		if !ok {
			return
		}
		ps.ingressPorts = ps.ingressPorts[:0]
		for _, p := range m.Ports {
			if p.PortNo != g.cfg.CachePort {
				ps.ingressPorts = append(ps.ingressPorts, p.PortNo)
			}
		}
	case openflow.StatsReply:
		ps, ok := g.switches[dp.DPID()]
		if !ok {
			return
		}
		if m.Table.BufferSize > 0 {
			ps.bufferFrac = float64(m.Table.BufferUsed) / float64(m.Table.BufferSize)
		}
	case openflow.PortStatus:
		g.onPortStatus(dp, m)
	}
}

// onPortStatus tracks topology changes: migration coverage must follow
// the live port set, or a port added mid-defense becomes an unmigrated
// path to the controller.
func (g *Guard) onPortStatus(dp controller.Datapath, m openflow.PortStatus) {
	ps, ok := g.switches[dp.DPID()]
	if !ok || m.Port.PortNo == g.cfg.CachePort {
		return
	}
	switch m.Reason {
	case openflow.PortAdded:
		for _, p := range ps.ingressPorts {
			if p == m.Port.PortNo {
				return
			}
		}
		ps.ingressPorts = append(ps.ingressPorts, m.Port.PortNo)
		// Selective mode leaves a fresh port alone: it has no blame yet,
		// and the per-window reconciliation diverts it if it earns some.
		if ps.migrated && !g.selectiveActive() {
			rules := dpcache.MigrationRules([]uint16{m.Port.PortNo}, g.cfg.CachePort)
			for _, fm := range rules {
				ps.dp.Send(openflow.Framed{Msg: fm})
			}
			ps.migrationRules = append(ps.migrationRules, rules...)
		}
	case openflow.PortDeleted:
		for i, p := range ps.ingressPorts {
			if p == m.Port.PortNo {
				ps.ingressPorts = append(ps.ingressPorts[:i:i], ps.ingressPorts[i+1:]...)
				break
			}
		}
		g.unmigratePort(ps, m.Port.PortNo)
		if ps.hasFallback && ps.fallback == m.Port.PortNo {
			ps.hasFallback = false
		}
		if ps.migrated {
			keep := ps.migrationRules[:0]
			for _, fm := range ps.migrationRules {
				if fm.Match.InPort == m.Port.PortNo {
					del := fm
					del.Command = openflow.FlowDeleteStrict
					ps.dp.Send(openflow.Framed{Msg: del})
					continue
				}
				keep = append(keep, fm)
			}
			ps.migrationRules = keep
		}
	}
}

func (g *Guard) pollStats() {
	for _, ps := range g.switches {
		ps.dp.Send(openflow.Framed{Msg: openflow.StatsRequest{}})
	}
}

// score computes the composite detection signal: the worst of the
// normalised packet_in rate and the normalised infrastructure
// utilization, so a slow attacker who exhausts buffers is still caught
// (§IV.C.1).
func (g *Guard) score(ratePPS float64) float64 {
	d := g.cfg.Detection
	if math.IsNaN(ratePPS) || ratePPS < 0 {
		// A poisoned rate sample (NaN EWMA seed, counter skew) must not
		// wedge the comparison chain below: NaN compares false against
		// everything, which would silently disable the rate component.
		ratePPS = 0
	}
	rateNorm := 0.0
	if d.RateThresholdPPS > 0 {
		rateNorm = ratePPS / d.RateThresholdPPS
	}
	util := 0.0
	for _, ps := range g.switches {
		if f := ps.bufferFrac; !math.IsNaN(f) && f > util {
			util = f
		}
	}
	if d.BacklogReference > 0 {
		if b := float64(g.ctrl.Backlog()) / float64(d.BacklogReference); b > util {
			util = b
		}
	}
	utilNorm := 0.0
	if d.UtilizationThreshold > 0 {
		utilNorm = util / d.UtilizationThreshold
	}
	if rateNorm > utilNorm {
		return rateNorm
	}
	return utilNorm
}

func (g *Guard) detect() {
	d := g.cfg.Detection
	perSec := float64(time.Second) / float64(d.SampleInterval)
	rate := g.rateEWMA.Observe(float64(g.pktInsSample) * perSec)
	g.pktInsSample = 0
	g.degradedAllowed = 0 // fresh direct-dispatch budget each window

	// Migration rate: what the caches are absorbing (attack-ongoing
	// signal while in Defense, when the controller no longer sees the
	// flood directly).
	var enq uint64
	for _, c := range g.caches {
		enq += c.Stats().Enqueued
	}
	g.migrationRate = float64(enq-g.lastMigrated) * perSec
	g.lastMigrated = enq

	score := g.score(rate)
	now := g.eng.Now()

	// Push the window's readings into scrape-safe gauges.
	g.gRate.Set(rate)
	g.gMigRate.Set(g.migrationRate)
	g.gScore.Set(score)

	// Close the attribution window first, so the transition handlers
	// below (and the per-port reconciliation) act on this window's
	// verdicts rather than last window's.
	if g.attrib != nil {
		g.attrib.Roll(d.SampleInterval)
		g.updateSelective()
	}

	switch g.fsm.State() {
	case StateIdle:
		if score >= 1 {
			g.overSamples++
			if g.overSamples >= d.TriggerSamples {
				g.onAttackDetected()
			}
		} else {
			g.overSamples = 0
		}
	case StateDefense:
		ongoing := score >= 1 || g.migrationRate >= d.RateThresholdPPS
		if ongoing {
			g.lastOver = now
		} else if now.Sub(g.lastOver) >= d.QuietPeriod {
			g.onAttackOver()
		}
	case StateDegraded:
		// Migration is withdrawn, so the controller sees the flood
		// directly again: the score alone decides whether it is over.
		if score >= 1 {
			g.lastOver = now
		} else if now.Sub(g.lastOver) >= d.QuietPeriod {
			g.onAttackOver()
		}
	case StateFinish:
		// Re-detection during drain re-enters Init.
		if score >= 1 || g.migrationRate >= d.RateThresholdPPS {
			g.overSamples++
			if g.overSamples >= d.TriggerSamples {
				g.onAttackDetected()
			}
		} else {
			g.overSamples = 0
		}
	}
}

// onAttackDetected drives Idle/Finish → Init → Defense: migrate
// table-miss traffic, derive and install proactive rules, start the
// replay rate controller.
func (g *Guard) onAttackDetected() {
	now := g.eng.Now()
	if err := g.fsm.to(StateInit, now, "saturation attack detected"); err != nil {
		return
	}
	g.detectedAttacks.Inc()
	g.overSamples = 0
	g.lastOver = now
	if g.drainTicker != nil {
		g.drainTicker.Stop()
		g.drainTicker = nil
	}

	// 1. Migrate: per-ingress-port wildcard rules to the cache port.
	// 2. Cache replay begins at the floor rate.
	// Both need the sideband; with it down, Defense is entered degraded
	// and the direct fallback limiter carries the load until it heals.
	if g.cacheReachable {
		for _, ps := range g.switches {
			g.installMigration(ps)
		}
		for _, c := range g.caches {
			c.SetRate(g.cfg.RateLimit.MinPPS)
		}
	}
	g.rateTicker = g.eng.NewTicker(g.cfg.RateLimit.AdjustInterval, g.adjustRate)

	// 3. Analyzer: substitute live globals into the offline path
	// conditions and install the proactive rules; Defense once ready.
	// With AsyncDerive the derivation runs off the engine goroutine and
	// the completion poller installs the rules and enters Defense.
	if g.cfg.Analyzer.AsyncDerive {
		g.startDerive()
		return
	}
	scoped, shared := g.ruleTargets()
	if _, _, err := g.analyzer.SyncScoped(scoped, shared); err != nil {
		return
	}
	latency := g.analyzer.LastDeriveDuration
	if g.cfg.Analyzer.ModeledDeriveLatency > 0 {
		latency = g.cfg.Analyzer.ModeledDeriveLatency
	}
	g.eng.Schedule(latency, func() {
		if g.fsm.State() == StateInit {
			g.enterDefense()
		}
	})
}

// enterDefense completes Init → Defense once the proactive rules are in.
func (g *Guard) enterDefense() {
	_ = g.fsm.to(StateDefense, g.eng.Now(), "proactive flow rules installed")
	g.trackTicker = g.eng.NewTicker(g.cfg.Analyzer.TrackInterval, g.track)
	if !g.cacheReachable {
		g.degrade()
	}
}

// startDerive launches one background derivation and arms the
// completion poller. A derivation already in flight is left to finish:
// the epoch memos admit one Derive at a time, and the pending outcome
// will complete the transition (the tracker refreshes any staleness).
func (g *Guard) startDerive() {
	if g.deriveCh != nil {
		return
	}
	g.deriveCh = g.analyzer.StartAsync()
	if g.derivePoll == nil {
		interval := g.cfg.Analyzer.DerivePollInterval
		if interval <= 0 {
			interval = 2 * time.Millisecond
		}
		g.derivePoll = g.eng.NewTicker(interval, g.pollDerive)
	}
}

// pollDerive completes an async derivation on the engine goroutine: the
// background compute phase only reads thread-safe state, and all rule
// dispatch and tracker bookkeeping happen here, preserving the engine's
// single-threaded invariants.
func (g *Guard) pollDerive() {
	if g.deriveCh == nil {
		if g.derivePoll != nil {
			g.derivePoll.Stop()
			g.derivePoll = nil
		}
		return
	}
	select {
	case o := <-g.deriveCh:
		g.deriveCh = nil
		if g.derivePoll != nil {
			g.derivePoll.Stop()
			g.derivePoll = nil
		}
		scoped, shared := g.ruleTargets()
		if _, _, err := g.analyzer.applyOutcome(o, scoped, shared); err != nil {
			return
		}
		if g.fsm.State() == StateInit {
			g.enterDefense()
		}
	default:
		// still deriving; the engine stays responsive
	}
}

// ruleTargets returns the datapath-scoped targets plus the shared ones.
func (g *Guard) ruleTargets() (map[uint64]RuleTarget, []RuleTarget) {
	if g.cfg.Analyzer.RulesInCache {
		return nil, []RuleTarget{tableTarget{tbl: g.cacheTbl, now: g.eng.Now}}
	}
	scoped := make(map[uint64]RuleTarget, len(g.switches))
	for dpid, ps := range g.switches {
		scoped[dpid] = datapathTarget{dp: ps.dp}
	}
	return scoped, nil
}

func (g *Guard) installMigration(ps *protectedSwitch) {
	if g.selectiveActive() {
		g.installSelective(ps)
		return
	}
	if ps.migrated {
		return
	}
	if g.cfg.DisableINPORTTag {
		// Ablation: one untagged wildcard rule; INPORT is lost.
		m := openflow.MatchAll()
		ps.migrationRules = []openflow.FlowMod{{
			Match:    m,
			Command:  openflow.FlowAdd,
			Priority: 1,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
			Actions: []openflow.Action{
				openflow.ActionSetNwTOS{TOS: 0},
				openflow.Output(g.cfg.CachePort),
			},
		}}
	} else {
		ps.migrationRules = dpcache.MigrationRules(ps.ingressPorts, g.cfg.CachePort)
	}
	for _, fm := range ps.migrationRules {
		ps.dp.Send(openflow.Framed{Msg: fm})
	}
	ps.migrated = true
}

func (g *Guard) removeMigration(ps *protectedSwitch) {
	for p := range ps.portRules {
		g.unmigratePort(ps, p)
	}
	ps.hasFallback = false
	if !ps.migrated {
		return
	}
	for _, fm := range ps.migrationRules {
		del := fm
		del.Command = openflow.FlowDeleteStrict
		ps.dp.Send(openflow.Framed{Msg: del})
	}
	ps.migrationRules = nil
	ps.migrated = false
}

// installSelective arms diversion for the ports attribution currently
// blames. When detection fired before any port crossed the blame
// threshold, the loudest port is diverted as a fallback so Defense never
// starts with zero coverage; the per-window reconciliation hands
// coverage to real verdicts as they land.
func (g *Guard) installSelective(ps *protectedSwitch) {
	ports := g.attrib.Suspects(ps.sw.DPID)
	if len(ports) == 0 {
		if p, _, ok := g.attrib.MaxBlamePort(ps.sw.DPID); ok {
			ports = []uint16{p}
			ps.fallback, ps.hasFallback = p, true
		}
	}
	for _, p := range ports {
		g.migratePort(ps, p)
	}
}

// updateSelective reconciles per-port diversion with this window's
// verdicts while defending: newly blamed ports are migrated, healed
// ports get their direct path back. Runs every detection window.
func (g *Guard) updateSelective() {
	if !g.selectiveActive() || !g.cacheReachable {
		return
	}
	if st := g.fsm.State(); st != StateInit && st != StateDefense {
		return
	}
	for _, ps := range g.switches {
		dpid := ps.sw.DPID
		anyBlamed := false
		for _, p := range ps.ingressPorts {
			if g.attrib.Blamed(dpid, p) {
				anyBlamed = true
				break
			}
		}
		if ps.hasFallback && anyBlamed {
			// A real verdict exists; the fallback designation expires and
			// the loop below keeps the port only if it is itself blamed.
			ps.hasFallback = false
		}
		for _, p := range ps.ingressPorts {
			keep := g.attrib.Blamed(dpid, p) || (ps.hasFallback && ps.fallback == p)
			if _, diverted := ps.portRules[p]; keep && !diverted {
				g.migratePort(ps, p)
			} else if !keep && diverted {
				g.unmigratePort(ps, p)
			}
		}
	}
}

// migratePort installs one port's diversion rules (selective mode).
func (g *Guard) migratePort(ps *protectedSwitch, port uint16) {
	if _, ok := ps.portRules[port]; ok || port == g.cfg.CachePort {
		return
	}
	rules := dpcache.MigrationRules([]uint16{port}, g.cfg.CachePort)
	for _, fm := range rules {
		ps.dp.Send(openflow.Framed{Msg: fm})
	}
	ps.portRules[port] = rules
	g.gMigratedPorts.Inc()
	g.jrec.Record(journal.KindMigrate, 0, 0, ps.dp.DPID(), port, 0, 0, 0)
}

// unmigratePort withdraws one port's diversion rules.
func (g *Guard) unmigratePort(ps *protectedSwitch, port uint16) {
	rules, ok := ps.portRules[port]
	if !ok {
		return
	}
	for _, fm := range rules {
		del := fm
		del.Command = openflow.FlowDeleteStrict
		ps.dp.Send(openflow.Framed{Msg: del})
	}
	delete(ps.portRules, port)
	g.gMigratedPorts.Dec()
	g.jrec.Record(journal.KindUnmigrate, 0, 0, ps.dp.DPID(), port, 0, 0, 0)
}

// track is the application tracker: it re-derives and re-installs
// proactive rules when global state drifts, per the §IV.D strategy.
// Degraded keeps the tracker live: proactive rules sit in switch TCAM,
// not behind the sideband, and they matter more when migration is off.
func (g *Guard) track() {
	if st := g.fsm.State(); st != StateDefense && st != StateDegraded {
		return
	}
	if g.deriveCh != nil {
		return // a derivation is already in flight; its outcome is pending
	}
	if !g.analyzer.NeedsUpdate() {
		return
	}
	if g.cfg.Analyzer.AsyncDerive {
		g.startDerive()
		return
	}
	scoped, shared := g.ruleTargets()
	_, _, _ = g.analyzer.SyncScoped(scoped, shared)
}

// adjustRate is the agent's AIMD replay-rate controller: it grows the
// cache's packet_in rate while the controller has headroom and backs off
// when backlog builds.
func (g *Guard) adjustRate() {
	if !g.cacheReachable {
		return // replay rides the sideband; nothing to steer while it is down
	}
	rl := g.cfg.RateLimit
	backlog := g.ctrl.Backlog()
	for _, c := range g.caches {
		rate := c.Rate()
		switch {
		case backlog > rl.TargetBacklog:
			rate /= 2
		case backlog < rl.TargetBacklog/2:
			rate *= rl.Growth
		}
		if rate < rl.MinPPS {
			rate = rl.MinPPS
		}
		if rate > rl.MaxPPS {
			rate = rl.MaxPPS
		}
		c.SetRate(rate)
	}
}

// onAttackOver drives Defense → Finish: stop migrating, keep draining.
func (g *Guard) onAttackOver() {
	if err := g.fsm.to(StateFinish, g.eng.Now(), "attack traffic subsided"); err != nil {
		return
	}
	for _, ps := range g.switches {
		g.removeMigration(ps)
	}
	if g.trackTicker != nil {
		g.trackTicker.Stop()
		g.trackTicker = nil
	}
	g.overSamples = 0
	g.drainTicker = g.eng.NewTicker(g.cfg.Detection.SampleInterval, g.checkDrained)
}

func (g *Guard) checkDrained() {
	if g.fsm.State() != StateFinish {
		return
	}
	if !g.cacheReachable {
		return // queued packets cannot replay until the sideband heals
	}
	for _, c := range g.caches {
		if !c.Drained() {
			return
		}
	}
	_ = g.fsm.to(StateIdle, g.eng.Now(), "data plane cache drained")
	if g.drainTicker != nil {
		g.drainTicker.Stop()
		g.drainTicker = nil
	}
	if g.rateTicker != nil {
		g.rateTicker.Stop()
		g.rateTicker = nil
	}
	for _, c := range g.caches {
		c.SetRate(0) // back to dormant
	}
}

// CacheEmit implements dpcache.Sink: a scheduled packet is re-raised as a
// packet_in under its original datapath, transparently to the
// applications (§IV.C.1, the migration agent's third function).
func (g *Guard) CacheEmit(origin uint64, origInPort uint16, pkt netpkt.Packet, queued time.Duration) {
	ps, ok := g.switches[origin]
	if !ok {
		return
	}
	g.replayed.Inc()
	g.lastReplayNanos.Set(int64(queued))
	g.trace.Observe(telemetry.StageReraise, queued)
	if g.ReplayObserver != nil {
		g.ReplayObserver(origin, origInPort, &pkt, queued)
	}
	// Exact-size Marshal, not pooled scratch: pi.Data is retained by the
	// packet_in event the controller queues for its applications, so the
	// frame outlives this call.
	data := pkt.Marshal()
	pi := openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		TotalLen: uint16(len(data)),
		InPort:   origInPort,
		Reason:   openflow.ReasonNoMatch,
		Data:     data,
	}
	g.replaying = true
	g.ctrl.InjectPacketIn(ps.dp, pi)
	g.replaying = false
}

// MigrationRate returns the most recent rate of packets being diverted
// into the caches (packets/second).
func (g *Guard) MigrationRate() float64 { return g.migrationRate }

// PacketInRate returns the detector's smoothed data-plane packet_in rate.
func (g *Guard) PacketInRate() float64 { return g.rateEWMA.Value() }

var _ dpcache.Sink = (*Guard)(nil)

package core

import (
	"sort"
	"testing"
	"time"

	"floodguard/internal/telemetry"
)

// asyncTestConfig enables the off-engine derivation path with memoized,
// parallel Algorithm 2.
func asyncTestConfig() Config {
	cfg := defaultTestConfig()
	cfg.Analyzer.AsyncDerive = true
	cfg.Analyzer.Memoize = true
	cfg.Analyzer.DeriveWorkers = 2
	return cfg
}

// runUntilState advances the simulation in short bursts, yielding real
// time between bursts: the async derivation runs on a real goroutine
// while the engine's virtual clock can outpace it arbitrarily.
func runUntilState(t *testing.T, b *bed, want FSMState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for b.guard.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("state = %v, want %v", b.guard.State(), want)
		}
		b.eng.RunFor(50 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
}

// With AsyncDerive the guard must still complete the full Figure 3
// cycle: detect, migrate, derive off the engine goroutine, install via
// the completion poller, defend.
func TestGuardAsyncDeriveDefends(t *testing.T) {
	b := newBed(t, asyncTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	runUntilState(t, b, StateDefense)
	if b.guard.DetectedAttacks() != 1 {
		t.Errorf("DetectedAttacks = %d, want 1", b.guard.DetectedAttacks())
	}
	if got := b.guard.Analyzer().InstalledCount(); got < 2 {
		t.Errorf("proactive rules = %d, want >= 2", got)
	}
	if b.guard.Analyzer().Derivations.Value() == 0 {
		t.Error("no derivations recorded")
	}
	if b.guard.deriveCh != nil && b.guard.derivePoll == nil {
		t.Error("in-flight derivation left without a completion poller")
	}
	// The attack subsides; the async guard must still unwind to idle.
	b.flooder.Stop()
	b.eng.RunFor(8 * time.Second)
	runUntilState(t, b, StateIdle)
}

// The async bed must end a defense window with the installed rule set
// the differential dispatcher would produce for the live state: a final
// engine-side sync right after the run is a no-op delta.
func TestGuardAsyncInstalledRulesConverge(t *testing.T) {
	b := newBed(t, asyncTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	runUntilState(t, b, StateDefense)

	// The engine is now paused, so app state is frozen. One synchronous
	// sync reconciles any drift since the last tracker tick; a second
	// must be a pure no-op — the async installs left consistent
	// bookkeeping behind.
	an := b.guard.Analyzer()
	tgt := &recordingTarget{}
	if _, _, err := an.Sync([]RuleTarget{tgt}); err != nil {
		t.Fatal(err)
	}
	inst, rem, err := an.Sync([]RuleTarget{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if inst != 0 || rem != 0 {
		t.Errorf("repeat sync on frozen state = (%d, %d), want (0, 0)", inst, rem)
	}
	keys := make([]string, 0, len(an.installed))
	for k := range an.installed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) < 2 {
		t.Errorf("installed rules = %d, want >= 2 (alice and bob learned)", len(keys))
	}
}

// The memoized analyzer must serve warm tracker syncs from the epoch
// cache, and the memo counters must surface through the registry.
func TestGuardMemoizedTrackerHitsCache(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.Analyzer.Memoize = true
	b := newBed(t, cfg)
	reg := telemetry.NewRegistry()
	b.guard.Instrument(reg)

	b.flooder.Start(200)
	b.eng.RunFor(3 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatal("never reached defense")
	}

	an := b.guard.Analyzer()
	// The engine is paused, so state is frozen; one settling sync
	// absorbs any drift since the tracker's last tick.
	tgt := &recordingTarget{}
	if _, _, err := an.Sync([]RuleTarget{tgt}); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := an.MemoStats()
	if misses0 == 0 {
		t.Fatal("memoized derivation recorded no misses")
	}
	// Repeat syncs with unchanged state: all hits, no new misses.
	for i := 0; i < 3; i++ {
		if _, _, err := an.Sync([]RuleTarget{tgt}); err != nil {
			t.Fatal(err)
		}
	}
	hits1, misses1 := an.MemoStats()
	if misses1 != misses0 {
		t.Errorf("warm syncs re-solved paths: misses %d -> %d", misses0, misses1)
	}
	if hits1 <= hits0 {
		t.Errorf("warm syncs did not hit the memo: hits %d -> %d", hits0, hits1)
	}

	snap := reg.Snapshot()
	var sawHits, sawHisto bool
	for _, m := range snap.Metrics {
		switch m.Name {
		case "fg_analyzer_memo_hits_total":
			sawHits = uint64(m.Value) == hits1
		case "fg_derive_seconds":
			sawHisto = m.Count > 0
		}
	}
	if !sawHits {
		t.Error("fg_analyzer_memo_hits_total missing or stale in registry snapshot")
	}
	if !sawHisto {
		t.Error("fg_derive_seconds recorded no observations")
	}
}

// StartAsync + applyOutcome must be byte-for-byte the same dispatch as
// the one-call SyncScoped.
func TestAnalyzerAsyncOutcomeMatchesSync(t *testing.T) {
	anSync, stSync := l2Analyzer(t, DefaultAnalyzer())
	anAsync, stAsync := l2Analyzer(t, DefaultAnalyzer())
	for b := byte(1); b <= 8; b++ {
		learnMAC(stSync, b, uint16(b))
		learnMAC(stAsync, b, uint16(b))
	}

	syncTgt := &recordingTarget{}
	inst, rem, err := anSync.Sync([]RuleTarget{syncTgt})
	if err != nil {
		t.Fatal(err)
	}

	asyncTgt := &recordingTarget{}
	o := <-anAsync.StartAsync()
	instA, remA, err := anAsync.applyOutcome(o, nil, []RuleTarget{asyncTgt})
	if err != nil {
		t.Fatal(err)
	}
	if inst != instA || rem != remA {
		t.Fatalf("async applied (%d, %d), sync (%d, %d)", instA, remA, inst, rem)
	}
	if len(syncTgt.adds) != len(asyncTgt.adds) {
		t.Fatalf("async dispatched %d adds, sync %d", len(asyncTgt.adds), len(syncTgt.adds))
	}
	if anAsync.LastDeriveDuration <= 0 {
		t.Error("outcome did not carry the derive duration")
	}
	// The tracker bookkeeping was committed: no drift, no re-sync needed.
	if anAsync.NeedsUpdate() {
		t.Error("applyOutcome left the tracker dirty")
	}
}

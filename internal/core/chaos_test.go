package core

import (
	"math/rand"
	"testing"
	"time"
)

// TestGuardChaosSoak is the seeded sideband-flap soak: while a flood is
// running, the channel to the data plane cache goes down and comes back
// at pseudo-random (but fully deterministic) times. The guard must ride
// every flap through the Defense↔Degraded edges, shed beyond-budget
// traffic while degraded, recover to Defense after the last heal, and —
// once the attack stops — drain back to Idle with the cache's packet
// conservation intact (nothing lost beyond the drop-oldest policy).
func TestGuardChaosSoak(t *testing.T) {
	const seed = 0xF100D
	cfg := defaultTestConfig()
	cfg.DegradedMaxPPS = 40 // well under the 200pps flood: drops must occur
	b := newBed(t, cfg)

	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state before chaos = %v, want defense", got)
	}

	// Flap the sideband. The engine is single-threaded and RunFor returns
	// with the virtual clock parked, so calling the guard directly here
	// is the same discipline as an engine event.
	rng := rand.New(rand.NewSource(seed))
	const flaps = 8
	for i := 0; i < flaps; i++ {
		b.guard.SetCacheReachable(false)
		if got := b.guard.State(); got != StateDegraded {
			t.Fatalf("flap %d: state after cut = %v, want degraded", i, got)
		}
		down := 150*time.Millisecond + time.Duration(rng.Intn(400))*time.Millisecond
		b.eng.RunFor(down)
		if got := b.guard.State(); got != StateDegraded {
			t.Fatalf("flap %d: state while down = %v, want degraded (flood ongoing)", i, got)
		}
		b.guard.SetCacheReachable(true)
		if got := b.guard.State(); got != StateDefense {
			t.Fatalf("flap %d: state after heal = %v, want defense", i, got)
		}
		up := 150*time.Millisecond + time.Duration(rng.Intn(400))*time.Millisecond
		b.eng.RunFor(up)
	}

	if got := b.guard.DegradedEntries(); got != flaps {
		t.Errorf("DegradedEntries = %d, want %d", got, flaps)
	}
	if b.guard.DegradedDrops() == 0 {
		t.Error("degraded limiter shed nothing despite a 200pps flood vs a 40pps budget")
	}
	// Every flap is two recorded edges; count them from the history.
	var cuts, heals int
	for _, tr := range b.guard.Transitions() {
		if tr.From == StateDefense && tr.To == StateDegraded {
			cuts++
		}
		if tr.From == StateDegraded && tr.To == StateDefense {
			heals++
		}
	}
	if cuts != flaps || heals != flaps {
		t.Errorf("transition history: %d cuts, %d heals, want %d each", cuts, heals, flaps)
	}

	// Migration must be back after the final heal: the flood is absorbed
	// again and the controller's direct rate collapses.
	b.eng.RunFor(2 * time.Second)
	if rate := b.guard.PacketInRate(); rate > 50 {
		t.Errorf("packet_in rate after recovery = %v, want collapsed (migration restored)", rate)
	}
	migration := 0
	for _, e := range b.sw.Table().Entries() {
		if e.Priority == 1 {
			migration++
		}
	}
	if migration != 3 {
		t.Errorf("migration rules after recovery = %d, want 3", migration)
	}

	// End the attack: the guard must wind down and the cache drain fully.
	b.flooder.Stop()
	b.eng.RunFor(30 * time.Second)
	if got := b.guard.State(); got != StateIdle {
		t.Fatalf("state after attack = %v, want idle", got)
	}
	st := b.guard.Caches()[0].Stats()
	if st.Enqueued == 0 {
		t.Fatal("cache absorbed nothing across the soak")
	}
	// Conservation: every packet that entered the cache was either
	// replayed or shed by the bounded-queue drop-oldest policy.
	if st.Emitted+st.Dropped != st.Enqueued {
		t.Errorf("cache conservation broken: emitted %d + dropped %d != enqueued %d",
			st.Emitted, st.Dropped, st.Enqueued)
	}
	if !b.guard.Caches()[0].Drained() {
		t.Error("cache not drained at idle")
	}
}

// TestGuardChaosSoakDeterministic pins reproducibility: the same seed
// must produce the identical transition history and counters.
func TestGuardChaosSoakDeterministic(t *testing.T) {
	run := func() ([]Transition, uint64, uint64) {
		cfg := defaultTestConfig()
		cfg.DegradedMaxPPS = 40
		b := newBed(t, cfg)
		b.flooder.Start(200)
		b.eng.RunFor(2 * time.Second)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 4; i++ {
			b.guard.SetCacheReachable(false)
			b.eng.RunFor(100*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond)
			b.guard.SetCacheReachable(true)
			b.eng.RunFor(100*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond)
		}
		return b.guard.Transitions(), b.guard.DegradedDrops(), b.guard.Replayed()
	}
	tr1, drops1, rep1 := run()
	tr2, drops2, rep2 := run()
	if drops1 != drops2 || rep1 != rep2 {
		t.Errorf("counters diverged across identical seeded runs: drops %d/%d replays %d/%d",
			drops1, drops2, rep1, rep2)
	}
	if len(tr1) != len(tr2) {
		t.Fatalf("transition counts diverged: %d vs %d", len(tr1), len(tr2))
	}
	// Compare the edge sequence, not timestamps: the Init→Defense edge is
	// scheduled after the analyzer's MEASURED wall-clock derive cost (real
	// cost fed into the virtual clock by design), so its At varies by
	// microseconds between runs while everything structural is pinned.
	for i := range tr1 {
		if tr1[i].From != tr2[i].From || tr1[i].To != tr2[i].To {
			t.Errorf("transition %d diverged: %+v vs %+v", i, tr1[i], tr2[i])
		}
	}
}

// TestGuardAttackEndsWhileDegraded covers the Degraded→Finish edge: the
// flood stops while the sideband is still down. The guard must wind
// down without the cache, then finish the drain only after it heals.
func TestGuardAttackEndsWhileDegraded(t *testing.T) {
	cfg := defaultTestConfig()
	b := newBed(t, cfg)
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state = %v, want defense", got)
	}
	b.guard.SetCacheReachable(false)
	b.eng.RunFor(200 * time.Millisecond)
	b.flooder.Stop()
	// Quiet period elapses with the controller seeing the flood directly
	// (degraded), so the score-only attack-over logic must fire.
	b.eng.RunFor(5 * time.Second)
	if got := b.guard.State(); got != StateFinish {
		t.Fatalf("state after quiet while degraded = %v, want finish", got)
	}
	// The cache cannot drain while unreachable.
	b.eng.RunFor(5 * time.Second)
	if got := b.guard.State(); got != StateFinish {
		t.Fatalf("state with sideband down = %v, want finish (drain blocked)", got)
	}
	b.guard.SetCacheReachable(true)
	b.eng.RunFor(30 * time.Second)
	if got := b.guard.State(); got != StateIdle {
		t.Fatalf("state after heal = %v, want idle (drained)", got)
	}
	st := b.guard.Caches()[0].Stats()
	if st.Emitted+st.Dropped != st.Enqueued {
		t.Errorf("cache conservation broken: emitted %d + dropped %d != enqueued %d",
			st.Emitted, st.Dropped, st.Enqueued)
	}
}

// TestGuardDetectsWhileCacheUnreachable: an attack that begins with the
// sideband already down must still be detected, and Defense is entered
// directly degraded (no migration to a cache nobody can reach).
func TestGuardDetectsWhileCacheUnreachable(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.DegradedMaxPPS = 40
	b := newBed(t, cfg)
	b.guard.SetCacheReachable(false)
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := b.guard.State(); got != StateDegraded {
		t.Fatalf("state = %v, want degraded (cache down at detection)", got)
	}
	if b.guard.DetectedAttacks() != 1 {
		t.Errorf("DetectedAttacks = %d, want 1", b.guard.DetectedAttacks())
	}
	// No migration rules: nothing may point at the unreachable cache.
	for _, e := range b.sw.Table().Entries() {
		if e.Priority == 1 {
			t.Fatal("migration rule installed while cache unreachable")
		}
	}
	if b.guard.Caches()[0].Stats().Enqueued != 0 {
		t.Error("cache absorbed packets while unreachable")
	}
	if b.guard.DegradedDrops() == 0 {
		t.Error("degraded limiter shed nothing")
	}
	// Healing mid-attack upgrades to full Defense with migration.
	b.guard.SetCacheReachable(true)
	b.eng.RunFor(time.Second)
	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state after heal = %v, want defense", got)
	}
	migration := 0
	for _, e := range b.sw.Table().Entries() {
		if e.Priority == 1 {
			migration++
		}
	}
	if migration != 3 {
		t.Errorf("migration rules after heal = %d, want 3", migration)
	}
}

package core

import (
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/controller"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/switchsim"
)

// TestGuardWithFirewallProactiveDrops: under defense, the firewall's
// security policy must be enforced by PROACTIVE rules in the data plane —
// blocked traffic is dropped at the switch without touching the
// controller or the cache, while allowed routable traffic is forwarded.
func TestGuardWithFirewallProactiveDrops(t *testing.T) {
	eng := netsim.NewEngine()
	sw := switchsim.New(eng, 0x1, switchsim.SoftwareProfile())
	sw.Start()
	defer sw.Stop()

	ctrl := controller.New(eng)
	prog, st := apps.OFFirewall()
	st.Learn("blockedTCPPorts", appir.U16Value(23), appir.BoolValue(true))
	st.AddPrefix("blockedSrcNets", appir.IPValue(netpkt.MustIPv4("203.0.113.0")), 24, appir.BoolValue(true))
	st.AddPrefix("routeTable", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(2))
	ctrl.Register(&controller.App{Prog: prog, State: st, CostPerEvent: time.Millisecond})

	client := switchsim.NewHost(eng, sw, "client", 1, netpkt.MustMAC("00:00:00:00:00:0a"), netpkt.MustIPv4("198.51.100.1"), 1e9, 0)
	server := switchsim.NewHost(eng, sw, "server", 2, netpkt.MustMAC("00:00:00:00:00:0b"), netpkt.MustIPv4("10.0.0.2"), 1e9, 0)
	attacker := switchsim.NewHost(eng, sw, "m", 3, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("203.0.113.9"), 1e9, 0)
	controller.Bind(ctrl, sw)

	cfg := DefaultConfig()
	cfg.Detection.SampleInterval = 50 * time.Millisecond
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	fl := switchsim.NewFlooder(attacker, 9, netpkt.FloodUDP, 64)
	fl.Start(300)
	eng.RunFor(2 * time.Second)
	if guard.State() != StateDefense {
		t.Fatalf("state = %v", guard.State())
	}
	if guard.Analyzer().InstalledCount() == 0 {
		t.Fatal("no proactive rules derived from the firewall policy")
	}

	// 1. Blocked source network: dropped by a proactive drop rule —
	// neither forwarded nor migrated nor seen by the controller.
	dropped := sw.Stats().DroppedNoRule
	evil := netpkt.Packet{
		EthSrc: attacker.MAC, EthDst: server.MAC,
		EthType: netpkt.EtherTypeIPv4,
		NwSrc:   netpkt.MustIPv4("203.0.113.9"), NwDst: netpkt.MustIPv4("10.0.0.2"),
		NwProto: netpkt.ProtoUDP, TpSrc: 9, TpDst: 9,
	}
	gotEvil, gotOK := 0, 0
	server.OnReceive = func(pkt netpkt.Packet) {
		if pkt.NwSrc == netpkt.MustIPv4("203.0.113.9") && pkt.TpDst == 9 {
			gotEvil++
		}
		if pkt.NwSrc == client.IP && pkt.TpDst == 53 {
			gotOK++
		}
	}
	attacker.Send(evil)
	eng.RunFor(200 * time.Millisecond)
	if got := sw.Stats().DroppedNoRule - dropped; got != 1 {
		t.Errorf("blocked-net packet: drops = %d, want 1 (proactive drop rule)", got)
	}
	if gotEvil != 0 {
		t.Error("blocked-net packet reached the server")
	}

	// 2. Blocked TCP port (telnet): proactive drop too.
	telnet := netpkt.Packet{
		EthSrc: client.MAC, EthDst: server.MAC,
		EthType: netpkt.EtherTypeIPv4,
		NwSrc:   client.IP, NwDst: server.IP,
		NwProto: netpkt.ProtoTCP, TpSrc: 4000, TpDst: 23, TCPFlags: netpkt.TCPSyn,
	}
	dropped = sw.Stats().DroppedNoRule
	client.Send(telnet)
	eng.RunFor(200 * time.Millisecond)
	if got := sw.Stats().DroppedNoRule - dropped; got != 1 {
		t.Errorf("telnet packet: drops = %d, want 1", got)
	}

	// 3. Routable allowed traffic: forwarded by the proactive route rule
	// to port 2, no migration detour.
	ok := netpkt.Packet{
		EthSrc: client.MAC, EthDst: server.MAC,
		EthType: netpkt.EtherTypeIPv4,
		NwSrc:   client.IP, NwDst: server.IP,
		NwProto: netpkt.ProtoUDP, TpSrc: 4000, TpDst: 53,
	}
	client.Send(ok)
	eng.RunFor(200 * time.Millisecond)
	if gotOK != 1 {
		t.Errorf("allowed routable packet delivered %d times, want 1", gotOK)
	}
}

package core

import (
	"math"
	"testing"
	"time"

	"floodguard/internal/controller"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/switchsim"
)

// scoreGuard builds a bare Guard (no protected switches, idle
// controller) whose score inputs the test controls directly.
func scoreGuard(t *testing.T, det DetectionConfig) *Guard {
	t.Helper()
	eng := netsim.NewEngine()
	cfg := DefaultConfig()
	cfg.Detection = det
	g, err := NewGuard(eng, controller.New(eng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuardScoreEdgeCases(t *testing.T) {
	base := DetectionConfig{
		RateThresholdPPS:     100,
		UtilizationThreshold: 0.5,
	}
	cases := []struct {
		name        string
		det         DetectionConfig
		ratePPS     float64
		bufferFracs []float64
		want        float64
	}{
		{
			name:    "rate component alone",
			det:     base,
			ratePPS: 250,
			want:    2.5,
		},
		{
			name:        "zero rate threshold disables rate component",
			det:         DetectionConfig{RateThresholdPPS: 0, UtilizationThreshold: 0.5},
			ratePPS:     1e9,
			bufferFracs: []float64{0},
			want:        0,
		},
		{
			name:        "zero utilization threshold disables util component",
			det:         DetectionConfig{RateThresholdPPS: 100, UtilizationThreshold: 0},
			ratePPS:     50,
			bufferFracs: []float64{1.0},
			want:        0.5,
		},
		{
			name:        "both thresholds zero yields zero score",
			det:         DetectionConfig{},
			ratePPS:     1e9,
			bufferFracs: []float64{1.0},
			want:        0,
		},
		{
			name:        "NaN rate treated as zero",
			det:         base,
			ratePPS:     math.NaN(),
			bufferFracs: []float64{0.4},
			want:        0.8,
		},
		{
			name:        "negative rate treated as zero",
			det:         base,
			ratePPS:     -42,
			bufferFracs: []float64{0.4},
			want:        0.8,
		},
		{
			name:        "NaN buffer fraction skipped",
			det:         base,
			ratePPS:     50,
			bufferFracs: []float64{math.NaN()},
			want:        0.5,
		},
		{
			name:        "simultaneous overload takes the max (rate wins)",
			det:         base,
			ratePPS:     300,
			bufferFracs: []float64{1.0},
			want:        3,
		},
		{
			name:        "simultaneous overload takes the max (util wins)",
			det:         base,
			ratePPS:     120,
			bufferFracs: []float64{0.9},
			want:        1.8,
		},
		{
			name:        "worst switch buffer dominates",
			det:         base,
			ratePPS:     0,
			bufferFracs: []float64{0.2, 0.8, math.NaN()},
			want:        1.6,
		},
		{
			name: "backlog reference set but controller idle",
			det: DetectionConfig{
				RateThresholdPPS:     100,
				UtilizationThreshold: 0.5,
				BacklogReference:     100 * time.Millisecond,
			},
			ratePPS: 50,
			want:    0.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := scoreGuard(t, tc.det)
			for i, f := range tc.bufferFracs {
				g.switches[uint64(i+1)] = &protectedSwitch{bufferFrac: f}
			}
			got := g.score(tc.ratePPS)
			if math.IsNaN(got) || math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("score(%v) = %v, want %v", tc.ratePPS, got, tc.want)
			}
		})
	}
}

// selectiveTestConfig arms attribution-driven per-port migration with a
// quiet period long enough to watch ports heal while Defense persists.
func selectiveTestConfig() Config {
	cfg := defaultTestConfig()
	cfg.Detection.QuietPeriod = 3 * time.Second
	cfg.Attribution.Enabled = true
	cfg.Attribution.Selective = true
	// Benign chatter (a handful of pps) must sit safely under the blame
	// floor while the 200 pps floods sail over it.
	cfg.Attribution.Params.SuspectRatePPS = 30
	return cfg
}

func TestSelectiveMigrationDivertsOnlyBlamedPort(t *testing.T) {
	b := newBed(t, selectiveTestConfig())
	b.flooder.Start(200) // mallory on port 3
	b.eng.RunFor(2 * time.Second)

	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state = %v, want defense", got)
	}
	if !b.guard.PortMigrated(0x1, 3) {
		t.Error("attack port 3 not migrated")
	}
	for _, p := range []uint16{1, 2} {
		if b.guard.PortMigrated(0x1, p) {
			t.Errorf("benign port %d migrated under selective mode", p)
		}
	}
	if got := b.guard.MigratedPortCount(); got != 1 {
		t.Errorf("MigratedPortCount = %d, want 1", got)
	}
	// Exactly one port's diversion rules in TCAM, not the blanket three.
	if got := migrationRuleCount(b.sw); got != 1 {
		t.Errorf("priority-1 rules = %d, want 1 (only the blamed port)", got)
	}
}

func TestSelectiveMigrationTransitionsMidDefense(t *testing.T) {
	b := newBed(t, selectiveTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state = %v, want defense", got)
	}
	if !b.guard.PortMigrated(0x1, 3) || b.guard.MigratedPortCount() != 1 {
		t.Fatalf("port 3 not the sole migrated port at defense entry")
	}

	// A second attacker appears mid-Defense on bob's port: its packet_ins
	// still reach the controller directly (the port is not diverted), so
	// the blame detector sees them and the reconciliation loop must extend
	// migration to port 2 without touching alice.
	fl2 := switchsim.NewFlooder(b.bob, 99, netpkt.FloodUDP, 64)
	fl2.Start(200)
	b.eng.RunFor(time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense to persist", b.guard.State())
	}
	if !b.guard.PortMigrated(0x1, 2) {
		t.Error("second attack port 2 not migrated mid-Defense")
	}
	if b.guard.PortMigrated(0x1, 1) {
		t.Error("benign port 1 migrated")
	}
	if got := b.guard.MigratedPortCount(); got != 2 {
		t.Errorf("MigratedPortCount = %d, want 2", got)
	}

	// Both floods end. Blame heals after the calm streak and the ports
	// get their direct path back while Defense rides out the quiet
	// period — un-migration must not wait for Finish.
	b.flooder.Stop()
	fl2.Stop()
	b.eng.RunFor(1500 * time.Millisecond)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense during quiet period", b.guard.State())
	}
	for _, p := range []uint16{1, 2, 3} {
		if b.guard.PortMigrated(0x1, p) {
			t.Errorf("port %d still migrated after blame healed", p)
		}
	}
	if got := b.guard.MigratedPortCount(); got != 0 {
		t.Errorf("MigratedPortCount = %d, want 0 after healing", got)
	}
	if got := migrationRuleCount(b.sw); got != 0 {
		t.Errorf("priority-1 rules = %d, want 0 after healing", got)
	}

	// Relapse: the attacker returns before the quiet period lapses; the
	// same Defense must re-divert its port.
	b.flooder.Start(200)
	b.eng.RunFor(time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense", b.guard.State())
	}
	if !b.guard.PortMigrated(0x1, 3) {
		t.Error("relapsed attack port 3 not re-migrated")
	}
	if b.guard.PortMigrated(0x1, 1) || b.guard.PortMigrated(0x1, 2) {
		t.Error("calm port migrated on relapse")
	}
}

func TestSelectiveMigrationFullCycleCleanup(t *testing.T) {
	b := newBed(t, selectiveTestConfig())
	b.flooder.Start(150)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense", b.guard.State())
	}
	b.flooder.Stop()
	b.eng.RunFor(30 * time.Second)
	if got := b.guard.State(); got != StateIdle {
		t.Fatalf("state = %v, want idle after drain", got)
	}
	if got := b.guard.MigratedPortCount(); got != 0 {
		t.Errorf("MigratedPortCount = %d after idle", got)
	}
	if got := migrationRuleCount(b.sw); got != 0 {
		t.Errorf("priority-1 rules = %d after idle", got)
	}
	// Conservation still holds with the benign/suspect queue split.
	st := b.guard.Caches()[0].Stats()
	if st.Emitted+st.Dropped != st.Enqueued {
		t.Errorf("cache conservation: enqueued %d != emitted %d + dropped %d",
			st.Enqueued, st.Emitted, st.Dropped)
	}
}

package core

import (
	"testing"
	"time"
)

var t0 = time.Date(2015, 6, 22, 0, 0, 0, 0, time.UTC)

func TestFSMLegalCycle(t *testing.T) {
	f := newFSM()
	if f.State() != StateIdle {
		t.Fatalf("initial state = %v", f.State())
	}
	steps := []FSMState{StateInit, StateDefense, StateFinish, StateIdle}
	for _, next := range steps {
		if err := f.to(next, t0, "test"); err != nil {
			t.Fatalf("to(%v): %v", next, err)
		}
	}
	if got := len(f.History()); got != 4 {
		t.Errorf("history = %d entries", got)
	}
}

func TestFSMFinishCanReenterInit(t *testing.T) {
	f := newFSM()
	for _, next := range []FSMState{StateInit, StateDefense, StateFinish, StateInit} {
		if err := f.to(next, t0, "test"); err != nil {
			t.Fatalf("to(%v): %v", next, err)
		}
	}
}

func TestFSMRejectsIllegalTransitions(t *testing.T) {
	illegal := []struct {
		path []FSMState
		next FSMState
	}{
		{nil, StateDefense},                              // idle -> defense
		{nil, StateFinish},                               // idle -> finish
		{[]FSMState{StateInit}, StateIdle},               // init -> idle
		{[]FSMState{StateInit}, StateFinish},             // init -> finish
		{[]FSMState{StateInit, StateDefense}, StateIdle}, // defense -> idle
		{[]FSMState{StateInit, StateDefense}, StateInit}, // defense -> init
	}
	for _, tt := range illegal {
		f := newFSM()
		for _, s := range tt.path {
			if err := f.to(s, t0, "setup"); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.to(tt.next, t0, "illegal"); err == nil {
			t.Errorf("transition %v -> %v allowed", f.State(), tt.next)
		}
	}
}

// TestFSMTransitionMatrix enumerates every ordered state pair and pins
// the full Figure-3 relation (including the degraded extension): the
// five legal-edge sets below ARE the machine, so any edit to
// legalTransitions must show up here.
func TestFSMTransitionMatrix(t *testing.T) {
	all := []FSMState{StateIdle, StateInit, StateDefense, StateFinish, StateDegraded}
	legal := map[FSMState]map[FSMState]bool{
		StateIdle:     {StateInit: true},
		StateInit:     {StateDefense: true},
		StateDefense:  {StateFinish: true, StateDegraded: true},
		StateFinish:   {StateIdle: true, StateInit: true},
		StateDegraded: {StateDefense: true, StateFinish: true},
	}
	// paths drives the machine from its initial state into each row state.
	paths := map[FSMState][]FSMState{
		StateIdle:     nil,
		StateInit:     {StateInit},
		StateDefense:  {StateInit, StateDefense},
		StateFinish:   {StateInit, StateDefense, StateFinish},
		StateDegraded: {StateInit, StateDefense, StateDegraded},
	}
	for _, from := range all {
		for _, to := range all {
			f := newFSM()
			for _, s := range paths[from] {
				if err := f.to(s, t0, "setup"); err != nil {
					t.Fatalf("setup path to %v: %v", from, err)
				}
			}
			err := f.to(to, t0, "probe")
			if legal[from][to] && err != nil {
				t.Errorf("%v -> %v rejected: %v", from, to, err)
			}
			if !legal[from][to] && err == nil {
				t.Errorf("%v -> %v allowed", from, to)
			}
			if !legal[from][to] && f.State() != from {
				t.Errorf("rejected transition moved state to %v", f.State())
			}
		}
	}
}

func TestFSMStateStrings(t *testing.T) {
	names := map[FSMState]string{
		StateIdle: "idle", StateInit: "init",
		StateDefense: "defense", StateFinish: "finish",
		StateDegraded: "degraded",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestUpdateStrategyStrings(t *testing.T) {
	if UpdateEveryChange.String() != "every-change" ||
		UpdateEveryN.String() != "every-n" ||
		UpdateInterval.String() != "interval" {
		t.Error("strategy names wrong")
	}
}

package core

import (
	"testing"
	"time"
)

var t0 = time.Date(2015, 6, 22, 0, 0, 0, 0, time.UTC)

func TestFSMLegalCycle(t *testing.T) {
	f := newFSM()
	if f.State() != StateIdle {
		t.Fatalf("initial state = %v", f.State())
	}
	steps := []FSMState{StateInit, StateDefense, StateFinish, StateIdle}
	for _, next := range steps {
		if err := f.to(next, t0, "test"); err != nil {
			t.Fatalf("to(%v): %v", next, err)
		}
	}
	if got := len(f.History()); got != 4 {
		t.Errorf("history = %d entries", got)
	}
}

func TestFSMFinishCanReenterInit(t *testing.T) {
	f := newFSM()
	for _, next := range []FSMState{StateInit, StateDefense, StateFinish, StateInit} {
		if err := f.to(next, t0, "test"); err != nil {
			t.Fatalf("to(%v): %v", next, err)
		}
	}
}

func TestFSMRejectsIllegalTransitions(t *testing.T) {
	illegal := []struct {
		path []FSMState
		next FSMState
	}{
		{nil, StateDefense},                              // idle -> defense
		{nil, StateFinish},                               // idle -> finish
		{[]FSMState{StateInit}, StateIdle},               // init -> idle
		{[]FSMState{StateInit}, StateFinish},             // init -> finish
		{[]FSMState{StateInit, StateDefense}, StateIdle}, // defense -> idle
		{[]FSMState{StateInit, StateDefense}, StateInit}, // defense -> init
	}
	for _, tt := range illegal {
		f := newFSM()
		for _, s := range tt.path {
			if err := f.to(s, t0, "setup"); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.to(tt.next, t0, "illegal"); err == nil {
			t.Errorf("transition %v -> %v allowed", f.State(), tt.next)
		}
	}
}

func TestFSMStateStrings(t *testing.T) {
	names := map[FSMState]string{
		StateIdle: "idle", StateInit: "init",
		StateDefense: "defense", StateFinish: "finish",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestUpdateStrategyStrings(t *testing.T) {
	if UpdateEveryChange.String() != "every-change" ||
		UpdateEveryN.String() != "every-n" ||
		UpdateInterval.String() != "interval" {
		t.Error("strategy names wrong")
	}
}

package core

import (
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/controller"
	"floodguard/internal/flowtable"
	"floodguard/internal/netpkt"
	"floodguard/internal/openflow"
)

// recordingTarget captures dispatched flow_mods.
type recordingTarget struct {
	adds    []openflow.FlowMod
	deletes []openflow.FlowMod
}

func (r *recordingTarget) InstallProactive(fm openflow.FlowMod) {
	if fm.Command == openflow.FlowDeleteStrict || fm.Command == openflow.FlowDelete {
		r.deletes = append(r.deletes, fm)
		return
	}
	r.adds = append(r.adds, fm)
}

func l2Analyzer(t *testing.T, cfg AnalyzerConfig) (*Analyzer, *appir.State) {
	t.Helper()
	prog, st := apps.L2Learning()
	app := &controller.App{Prog: prog, State: st}
	an, err := NewAnalyzer(cfg, []*controller.App{app})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Prepare(); err != nil {
		t.Fatal(err)
	}
	return an, st
}

func learnMAC(st *appir.State, b byte, port uint16) {
	st.Learn("macToPort", appir.MACValue(netpkt.MACFromUint64(uint64(b))), appir.U16Value(port))
}

func TestAnalyzerSyncIsDifferential(t *testing.T) {
	an, st := l2Analyzer(t, DefaultAnalyzer())
	tgt := &recordingTarget{}
	learnMAC(st, 1, 1)
	learnMAC(st, 2, 2)

	inst, rem, err := an.Sync([]RuleTarget{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if inst != 2 || rem != 0 {
		t.Fatalf("first sync = (%d, %d), want (2, 0)", inst, rem)
	}

	// No change: no traffic.
	inst, rem, err = an.Sync([]RuleTarget{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if inst != 0 || rem != 0 {
		t.Errorf("idempotent sync = (%d, %d), want (0, 0)", inst, rem)
	}

	// One addition, one removal: exactly one add + one delete dispatched.
	learnMAC(st, 3, 3)
	st.Unlearn("macToPort", appir.MACValue(netpkt.MACFromUint64(1)))
	addsBefore, delsBefore := len(tgt.adds), len(tgt.deletes)
	inst, rem, err = an.Sync([]RuleTarget{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if inst != 1 || rem != 1 {
		t.Errorf("delta sync = (%d, %d), want (1, 1)", inst, rem)
	}
	if len(tgt.adds)-addsBefore != 1 || len(tgt.deletes)-delsBefore != 1 {
		t.Errorf("dispatched %d adds, %d deletes", len(tgt.adds)-addsBefore, len(tgt.deletes)-delsBefore)
	}
	if an.InstalledCount() != 2 {
		t.Errorf("InstalledCount = %d, want 2", an.InstalledCount())
	}
}

func TestAnalyzerSyncUpdatesChangedActions(t *testing.T) {
	an, st := l2Analyzer(t, DefaultAnalyzer())
	tgt := &recordingTarget{}
	learnMAC(st, 1, 1)
	if _, _, err := an.Sync([]RuleTarget{tgt}); err != nil {
		t.Fatal(err)
	}
	// Same MAC moves to a different port: same match, new action.
	learnMAC(st, 1, 7)
	inst, rem, err := an.Sync([]RuleTarget{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if inst != 1 || rem != 0 {
		t.Errorf("action-change sync = (%d, %d), want (1, 0) overwrite", inst, rem)
	}
	last := tgt.adds[len(tgt.adds)-1]
	if got := last.Actions[0].(openflow.ActionOutput).Port; got != 7 {
		t.Errorf("updated rule outputs to %d, want 7", got)
	}
}

func TestAnalyzerIdleTimeoutOverride(t *testing.T) {
	cfg := DefaultAnalyzer()
	cfg.RuleIdleTimeoutOverride = 120
	an, st := l2Analyzer(t, cfg)
	learnMAC(st, 1, 1)
	rules, err := an.DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].IdleTimeout != 120 {
		t.Errorf("rules = %+v, want idle timeout 120", rules)
	}
}

func TestNeedsUpdateStrategies(t *testing.T) {
	t.Run("every-change", func(t *testing.T) {
		an, st := l2Analyzer(t, AnalyzerConfig{Strategy: UpdateEveryChange})
		if _, err := an.DeriveAll(); err != nil {
			t.Fatal(err)
		}
		if an.NeedsUpdate() {
			t.Error("NeedsUpdate true with no changes")
		}
		learnMAC(st, 1, 1)
		if !an.NeedsUpdate() {
			t.Error("NeedsUpdate false after one change")
		}
	})
	t.Run("every-n", func(t *testing.T) {
		an, st := l2Analyzer(t, AnalyzerConfig{Strategy: UpdateEveryN, EveryN: 3})
		if _, err := an.DeriveAll(); err != nil {
			t.Fatal(err)
		}
		learnMAC(st, 1, 1)
		learnMAC(st, 2, 2)
		if an.NeedsUpdate() {
			t.Error("NeedsUpdate true after 2 of 3 changes")
		}
		learnMAC(st, 3, 3)
		if !an.NeedsUpdate() {
			t.Error("NeedsUpdate false after 3 changes")
		}
		if _, err := an.DeriveAll(); err != nil {
			t.Fatal(err)
		}
		if an.NeedsUpdate() {
			t.Error("NeedsUpdate true after re-derivation")
		}
	})
}

func TestAnalyzerStateSensitiveReport(t *testing.T) {
	progs, states := apps.EvaluationSet()
	var capps []*controller.App
	for i := range progs {
		capps = append(capps, &controller.App{Prog: progs[i], State: states[i]})
	}
	an, err := NewAnalyzer(DefaultAnalyzer(), capps)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Prepare(); err != nil {
		t.Fatal(err)
	}
	report := an.StateSensitiveReport()
	if len(report) != 5 {
		t.Fatalf("report covers %d apps", len(report))
	}
	found := false
	for _, v := range report["l2_learning"] {
		if v == "macToPort" {
			found = true
		}
	}
	if !found {
		t.Errorf("l2_learning report = %v, want macToPort", report["l2_learning"])
	}
}

func TestAnalyzerDeriveDurationRecorded(t *testing.T) {
	an, st := l2Analyzer(t, DefaultAnalyzer())
	for i := 1; i <= 50; i++ {
		learnMAC(st, byte(i), uint16(i%8+1))
	}
	if _, err := an.DeriveAll(); err != nil {
		t.Fatal(err)
	}
	if an.LastDeriveDuration <= 0 {
		t.Error("LastDeriveDuration not recorded")
	}
	if an.LastDeriveDuration > time.Second {
		t.Errorf("derivation took %v for 50 entries; suspicious", an.LastDeriveDuration)
	}
}

func TestTableTargetRespectsCapacity(t *testing.T) {
	tbl := flowtable.New(1)
	tgt := tableTarget{tbl: tbl, now: func() time.Time { return t0 }}
	p1 := netpkt.Packet{EthType: netpkt.EtherTypeIPv4, NwDst: netpkt.MustIPv4("10.0.0.1"), NwProto: netpkt.ProtoUDP}
	p2 := netpkt.Packet{EthType: netpkt.EtherTypeIPv4, NwDst: netpkt.MustIPv4("10.0.0.2"), NwProto: netpkt.ProtoUDP}
	tgt.InstallProactive(openflow.FlowMod{Match: openflow.ExactFrom(&p1, 1), Command: openflow.FlowAdd, Priority: 5})
	tgt.InstallProactive(openflow.FlowMod{Match: openflow.ExactFrom(&p2, 1), Command: openflow.FlowAdd, Priority: 5})
	if tbl.Len() != 1 {
		t.Errorf("table len = %d, want 1 (capacity respected, overflow dropped)", tbl.Len())
	}
}

package core

import (
	"time"

	"floodguard/internal/attrib"
	"floodguard/internal/dpcache"
)

// DetectionConfig parameterises the migration agent's flood detector. The
// paper's detector combines the real-time packet_in rate with
// infrastructure utilization (switch buffer memory, controller load) so
// that an attacker who floods slowly but exhausts resources is still
// caught (§IV.C.1).
type DetectionConfig struct {
	// SampleInterval is the detector's polling period.
	SampleInterval time.Duration
	// RateThresholdPPS normalises the packet_in rate component: rate at
	// which the component alone reaches the threshold.
	RateThresholdPPS float64
	// UtilizationThreshold normalises the utilization component (buffer
	// occupancy fraction and controller backlog fraction).
	UtilizationThreshold float64
	// BacklogReference converts controller work backlog into a
	// utilization fraction (backlog == reference ⇒ 1.0).
	BacklogReference time.Duration
	// TriggerSamples is how many consecutive over-threshold samples
	// declare the attack.
	TriggerSamples int
	// QuietPeriod is how long the score must stay below threshold before
	// the attack is declared over.
	QuietPeriod time.Duration
	// RateEWMAAlpha smooths the packet_in rate estimate.
	RateEWMAAlpha float64
}

// DefaultDetection returns thresholds calibrated for the bundled switch
// profiles.
func DefaultDetection() DetectionConfig {
	return DetectionConfig{
		SampleInterval:       50 * time.Millisecond,
		RateThresholdPPS:     60,
		UtilizationThreshold: 0.5,
		BacklogReference:     200 * time.Millisecond,
		TriggerSamples:       2,
		QuietPeriod:          time.Second,
		RateEWMAAlpha:        0.4,
	}
}

// UpdateStrategy selects when the analyzer re-derives proactive rules
// after global state changes (paper §IV.D's performance/accuracy
// tradeoff).
type UpdateStrategy int

// Update strategies.
const (
	// UpdateEveryChange re-derives on every state version bump: maximum
	// accuracy, maximum overhead.
	UpdateEveryChange UpdateStrategy = iota + 1
	// UpdateEveryN re-derives after every N version bumps.
	UpdateEveryN
	// UpdateInterval re-derives at a fixed period regardless of change
	// count.
	UpdateInterval
)

// String names the strategy.
func (u UpdateStrategy) String() string {
	switch u {
	case UpdateEveryChange:
		return "every-change"
	case UpdateEveryN:
		return "every-n"
	case UpdateInterval:
		return "interval"
	default:
		return "unknown"
	}
}

// AnalyzerConfig parameterises the proactive flow rule analyzer.
type AnalyzerConfig struct {
	// Strategy picks the §IV.D update policy.
	Strategy UpdateStrategy
	// EveryN applies when Strategy == UpdateEveryN.
	EveryN uint64
	// TrackInterval is the application tracker's polling period (also
	// the period for UpdateInterval).
	TrackInterval time.Duration
	// RulesInCache enables the §IV.E design option: proactive rules are
	// installed into the data plane cache instead of switch TCAM.
	RulesInCache bool
	// RuleIdleTimeoutOverride, when positive, replaces the derived
	// rules' idle timeout (seconds) so proactive rules survive the
	// attack window.
	RuleIdleTimeoutOverride uint16
	// Memoize caches per-path derivation results keyed by global-variable
	// epochs: repeat derivations re-solve only the paths whose globals
	// actually moved, making repeat Init→Defense transitions near-free.
	// Off by default so the Figure 13 experiments measure a cold
	// Algorithm 2 run; the output is identical either way.
	Memoize bool
	// DeriveWorkers caps the parallel path-concretization worker pool
	// (0 = GOMAXPROCS, 1 = sequential). The parallel output is
	// bit-identical to a sequential run.
	DeriveWorkers int
	// AsyncDerive runs Algorithm 2 off the engine goroutine: the FSM and
	// detector stay responsive during large derivations, and the rules
	// are installed by a completion poller on the engine.
	AsyncDerive bool
	// DerivePollInterval is the async completion poll period (0 picks a
	// 2ms default).
	DerivePollInterval time.Duration
	// ModeledDeriveLatency, when positive, is the derivation latency the
	// guard charges to virtual time for the Init→Defense handoff instead
	// of the measured wall-clock cost. Measured cost tracks the host
	// (cold caches, GC, load), so simulations that must be reproducible —
	// the sharded sweeps in particular — pin this to a fixed figure.
	ModeledDeriveLatency time.Duration
}

// DefaultAnalyzer returns the paper-faithful configuration.
func DefaultAnalyzer() AnalyzerConfig {
	return AnalyzerConfig{
		Strategy:      UpdateEveryChange,
		TrackInterval: 20 * time.Millisecond,
	}
}

// RateLimitConfig governs the agent's control of the cache's packet_in
// generation rate.
type RateLimitConfig struct {
	// MinPPS and MaxPPS bound the replay rate.
	MinPPS float64
	MaxPPS float64
	// TargetBacklog is the controller work backlog the agent steers
	// toward: above it the rate halves, below half of it the rate grows.
	TargetBacklog time.Duration
	// Growth is the multiplicative increase factor when headroom exists.
	Growth float64
	// AdjustInterval is how often the rate is revisited.
	AdjustInterval time.Duration
}

// DefaultRateLimit returns an AIMD-style controller-protecting policy.
func DefaultRateLimit() RateLimitConfig {
	return RateLimitConfig{
		MinPPS:         10,
		MaxPPS:         200,
		TargetBacklog:  50 * time.Millisecond,
		Growth:         1.25,
		AdjustInterval: 100 * time.Millisecond,
	}
}

// AttributionConfig arms the attack attribution subsystem.
type AttributionConfig struct {
	// Enabled runs the attribution engine: sampled packet_in headers feed
	// per-port blame detectors and per-source sketches, the caches split
	// their queues benign/suspect on its verdicts (benign-priority
	// replay), and blame telemetry is exported.
	Enabled bool
	// Selective switches migration from blanket (every ingress port
	// diverted on detection) to selective: only ports attribution blames
	// get diversion rules, and each port's rules are withdrawn as its
	// blame heals — benign ports keep their direct path to the
	// controller. Requires Enabled; ignored under DisableINPORTTag,
	// whose single untagged rule cannot discriminate ports.
	Selective bool
	// Params tunes the engine (zero values pick attrib defaults).
	Params attrib.Config
}

// Config assembles a Guard.
type Config struct {
	Detection   DetectionConfig
	Analyzer    AnalyzerConfig
	RateLimit   RateLimitConfig
	Attribution AttributionConfig
	Cache       dpcache.Config
	// CachePort is the switch port number the data plane cache attaches
	// to on every protected switch.
	CachePort uint16
	// DisableINPORTTag is an ablation knob: install ONE untagged
	// wildcard migration rule instead of the paper's per-ingress-port
	// TOS-tagging rules. The original INPORT is then lost in migration
	// (§IV.C.1's "obvious challenge"), so replayed packet_ins carry
	// in_port 0 and learning apps poison their state.
	DisableINPORTTag bool
	// StatsPollInterval is how often the agent polls switch utilization.
	StatsPollInterval time.Duration
	// DegradedMaxPPS bounds direct packet_in dispatch while the guard is
	// in the degraded fallback (cache unreachable): table-miss packets
	// flow straight to the controller again, and everything beyond this
	// budget per detection window is dropped at the platform layer. Zero
	// falls back to RateLimit.MaxPPS — the same ceiling the cache replay
	// path honours, so degradation never admits more load than Defense.
	DegradedMaxPPS float64
	// TraceSampleEvery samples one in N packets for pipeline lifecycle
	// tracing when the guard is instrumented (0 picks
	// DefaultTraceSampleEvery; 1 traces every packet).
	TraceSampleEvery int
}

// DefaultTraceSampleEvery is the default pipeline tracing sample rate.
const DefaultTraceSampleEvery = 64

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Detection:         DefaultDetection(),
		Analyzer:          DefaultAnalyzer(),
		RateLimit:         DefaultRateLimit(),
		Cache:             dpcache.DefaultConfig(),
		CachePort:         63,
		StatsPollInterval: 50 * time.Millisecond,
		TraceSampleEvery:  DefaultTraceSampleEvery,
	}
}

package core

import (
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/controller"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/switchsim"
)

// TestTinyTCAMDoesNotBreakDefense injects the failure the paper's §IV.E
// worries about: switch TCAM too small for the proactive rule set. The
// switch answers flow_mods with errors; the guard must stay functional
// (migration still protects the controller) even though coverage is
// partial.
func TestTinyTCAMDoesNotBreakDefense(t *testing.T) {
	eng := netsim.NewEngine()
	prof := switchsim.SoftwareProfile()
	prof.TableCapacity = 5 // room for migration rules and little else
	sw := switchsim.New(eng, 0x1, prof)
	sw.Start()
	defer sw.Stop()

	ctrl := controller.New(eng)
	prog, st := apps.L2Learning()
	// Pre-learn many hosts so the derived rule set overflows the table.
	for i := 1; i <= 40; i++ {
		st.Learn("macToPort", appir.MACValue(netpkt.MACFromUint64(uint64(i))), appir.U16Value(uint16(i%3+1)))
	}
	ctrl.Register(&controller.App{Prog: prog, State: st, CostPerEvent: time.Millisecond})
	attacker := switchsim.NewHost(eng, sw, "m", 3, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 0)
	controller.Bind(ctrl, sw)

	cfg := DefaultConfig()
	cfg.Detection.SampleInterval = 50 * time.Millisecond
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	fl := switchsim.NewFlooder(attacker, 3, netpkt.FloodUDP, 64)
	fl.Start(300)
	eng.RunFor(2 * time.Second)

	if guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense despite table-full errors", guard.State())
	}
	if sw.Table().Len() > prof.TableCapacity {
		t.Fatalf("table overflowed its capacity: %d > %d", sw.Table().Len(), prof.TableCapacity)
	}
	// Migration still shields the controller.
	if rate := guard.PacketInRate(); rate > 50 {
		t.Errorf("controller packet_in rate = %v despite migration", rate)
	}
	if guard.Caches()[0].Stats().Enqueued == 0 {
		t.Error("cache absorbed nothing")
	}
}

// TestGuardSurvivesCacheQueueOverflow floods harder than the cache can
// hold: drop-oldest must bound memory, conservation must hold, and the
// system must still drain back to Idle.
func TestGuardSurvivesCacheQueueOverflow(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.Cache.QueueCapacity = 50 // tiny
	b := newBed(t, cfg)
	b.flooder.Start(500)
	b.eng.RunFor(3 * time.Second)
	st := b.guard.Caches()[0].Stats()
	if st.Dropped == 0 {
		t.Fatal("expected drops from the tiny queue")
	}
	if st.Backlog > 4*50+1 {
		t.Errorf("backlog %d exceeds queue bounds", st.Backlog)
	}
	if st.Emitted+st.Dropped+uint64(st.Backlog) != st.Enqueued {
		t.Errorf("conservation violated: %d emitted + %d dropped + %d backlog != %d enqueued",
			st.Emitted, st.Dropped, st.Backlog, st.Enqueued)
	}
	b.flooder.Stop()
	b.eng.RunFor(20 * time.Second)
	if b.guard.State() != StateIdle {
		t.Errorf("state = %v, want idle after drain", b.guard.State())
	}
}

// TestDetectorIgnoresShortBenignBurst: a brief legitimate burst (below
// TriggerSamples of sustained signal) must not trip the defense.
func TestDetectorIgnoresShortBenignBurst(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.Detection.TriggerSamples = 4 // demand sustained signal
	b := newBed(t, cfg)

	// One 30-packet burst inside a single sample window.
	f := b.alice
	for i := 0; i < 30; i++ {
		f.Send(netpkt.Flow{
			SrcMAC: b.alice.MAC, DstMAC: netpkt.MACFromUint64(uint64(0x500 + i)),
			SrcIP: b.alice.IP, DstIP: netpkt.IPv4(0x0a000100 + uint32(i)),
			Proto: netpkt.ProtoUDP, SrcPort: uint16(1000 + i), DstPort: 80,
		}.Packet(100))
	}
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateIdle {
		t.Errorf("state = %v; a one-window benign burst tripped the defense", b.guard.State())
	}
	if b.guard.DetectedAttacks() != 0 {
		t.Errorf("DetectedAttacks = %d", b.guard.DetectedAttacks())
	}
}

// TestGuardWithNoAppsStillMigrates: even with zero registered apps (no
// proactive rules derivable), migration alone must protect the
// controller and the FSM must cycle.
func TestGuardWithNoAppsStillMigrates(t *testing.T) {
	eng := netsim.NewEngine()
	sw := switchsim.New(eng, 0x1, switchsim.SoftwareProfile())
	sw.Start()
	defer sw.Stop()
	ctrl := controller.New(eng)
	attacker := switchsim.NewHost(eng, sw, "m", 1, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 0)
	controller.Bind(ctrl, sw)
	cfg := DefaultConfig()
	cfg.Detection.SampleInterval = 50 * time.Millisecond
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	fl := switchsim.NewFlooder(attacker, 5, netpkt.FloodUDP, 64)
	fl.Start(300)
	eng.RunFor(2 * time.Second)
	if guard.State() != StateDefense {
		t.Fatalf("state = %v", guard.State())
	}
	if guard.Analyzer().InstalledCount() != 0 {
		t.Errorf("proactive rules = %d with no apps", guard.Analyzer().InstalledCount())
	}
	fl.Stop()
	eng.RunFor(60 * time.Second)
	if guard.State() != StateIdle {
		t.Errorf("state = %v, want idle", guard.State())
	}
}

package core

import (
	"strings"
	"testing"
	"time"

	"floodguard/internal/telemetry"
)

// TestFSMEventLogRecordsChaosChain is the end-to-end observability
// check: a full chaos sequence — attack detected, Defense, sideband cut
// (Degraded), heal (Defense), attack over (Finish), drain (Idle) — must
// land in the guard's FSM event log in order, each event carrying the
// key gauges at transition time, and the whole chain must surface
// through a registry snapshot.
func TestFSMEventLogRecordsChaosChain(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.DegradedMaxPPS = 40
	b := newBed(t, cfg)
	reg := telemetry.NewRegistry()
	tracer := b.guard.Instrument(reg)
	b.sw.SetTracer(tracer)
	b.sw.Instrument(reg, "fg_switch")

	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state = %v, want defense", got)
	}
	b.guard.SetCacheReachable(false)
	b.eng.RunFor(300 * time.Millisecond)
	b.guard.SetCacheReachable(true)
	b.eng.RunFor(2 * time.Second)
	b.flooder.Stop()
	b.eng.RunFor(30 * time.Second)
	if got := b.guard.State(); got != StateIdle {
		t.Fatalf("state after attack = %v, want idle", got)
	}

	events := b.guard.Events()
	var chain []string
	for _, e := range events {
		chain = append(chain, e.From+">"+e.To)
	}
	want := []string{
		"idle>init", "init>defense", "defense>degraded",
		"degraded>defense", "defense>finish", "finish>idle",
	}
	if len(chain) != len(want) {
		t.Fatalf("event chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("event chain = %v, want %v", chain, want)
		}
	}

	// Events must carry the transition-time gauges and be monotonic.
	for i, e := range events {
		if e.Reason == "" {
			t.Errorf("event %d (%s>%s) has no reason", i, e.From, e.To)
		}
		if _, ok := e.Fields["packet_in_rate_pps"]; !ok {
			t.Errorf("event %d missing packet_in_rate_pps field", i)
		}
		if i > 0 && e.Time.Before(events[i-1].Time) {
			t.Errorf("event %d out of order: %v before %v", i, e.Time, events[i-1].Time)
		}
	}
	// The cut happened mid-flood: the Degraded entry must see a live
	// packet_in or migration stream, and the Finish event replays.
	degraded := events[2]
	if degraded.Fields["migration_rate_pps"] == 0 && degraded.Fields["packet_in_rate_pps"] == 0 {
		t.Error("degraded event saw neither migration nor packet_in traffic")
	}
	finish := events[4]
	if finish.Fields["replayed"] == 0 {
		t.Error("finish event recorded zero replays despite a full Defense phase")
	}

	// The same chain must surface through the registry snapshot.
	snap := reg.Snapshot()
	evs, ok := snap.Events["fsm_transitions"]
	if !ok {
		t.Fatal("snapshot has no fsm_transitions log")
	}
	if len(evs) != len(want) {
		t.Fatalf("snapshot events = %d, want %d", len(evs), len(want))
	}

	// And the Prometheus exposition must include the guard counters and
	// per-stage pipeline histograms with real observations.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"fg_guard_attacks_detected_total 1",
		"fg_guard_replayed_total",
		"fg_guard_state 1", // back at idle
		`fg_pipeline_seconds_bucket{stage="cache_wait"`,
		`fg_pipeline_seconds_bucket{stage="packet_in"`,
		"fg_cache_queue_depth",
		"fg_switch_packet_ins_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q", name)
		}
	}
	// Sampled tracing saw real packets through the cache.
	if got := tracer.Histogram(telemetry.StageCacheWait).Count(); got == 0 {
		t.Error("cache_wait stage histogram empty: sampled tracing recorded nothing")
	}
	if got := tracer.Histogram(telemetry.StagePacketIn).Count(); got == 0 {
		t.Error("packet_in stage histogram empty: switch tracing recorded nothing")
	}
}

package core

import (
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
	"floodguard/internal/switchsim"
)

// sendUnknownFlow sends one packet from a brand-new host to an unlearned
// destination during defense and waits for the replay to be learned.
func sendUnknownFlow(b *bed, from *switchsim.Host) {
	pkt := netpkt.Packet{
		EthSrc: from.MAC, EthDst: netpkt.MustMAC("00:00:00:00:00:7e"),
		EthType: netpkt.EtherTypeIPv4,
		NwSrc:   from.IP, NwDst: netpkt.MustIPv4("10.0.0.126"),
		NwProto: netpkt.ProtoTCP, TpSrc: 4321, TpDst: 80, TCPFlags: netpkt.TCPSyn,
	}
	from.Send(pkt)
	b.eng.RunFor(2 * time.Second)
}

// TestINPORTTaggingPreservesLearning validates the paper's §IV.C.1 tag
// design: with per-port TOS tagging, a packet migrated through the cache
// is replayed with its ORIGINAL ingress port, so l2_learning learns the
// right location for the source.
func TestINPORTTaggingPreservesLearning(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v", b.guard.State())
	}

	// Alice's brand-new flow to an unlearned destination is migrated on
	// port 1 and replayed; her binding must say port 1.
	sendUnknownFlow(b, b.alice)
	got, ok := b.l2.State.LookupTable("macToPort", appir.MACValue(b.alice.MAC))
	if !ok {
		t.Fatal("alice not (re)learned from the replay")
	}
	if got.U16() != b.alice.Port() {
		t.Errorf("learned port = %d, want %d (TOS tag preserved INPORT)", got.U16(), b.alice.Port())
	}
}

// TestINPORTTagAblationPoisonsLearning is the counterpart: with the
// single untagged wildcard rule, the ingress port is lost — replays
// carry in_port 0 and the learning table is poisoned, exactly the
// failure mode the paper's tag avoids.
func TestINPORTTagAblationPoisonsLearning(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.DisableINPORTTag = true
	b := newBed(t, cfg)
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v", b.guard.State())
	}
	// Exactly one migration rule (the untagged wildcard).
	if got := migrationRuleCount(b.sw); got != 1 {
		t.Fatalf("migration rules = %d, want 1 (single wildcard)", got)
	}

	sendUnknownFlow(b, b.alice)
	got, ok := b.l2.State.LookupTable("macToPort", appir.MACValue(b.alice.MAC))
	if !ok {
		t.Fatal("alice not relearned at all")
	}
	if got.U16() == b.alice.Port() {
		t.Fatalf("learned port = %d; without the tag the true INPORT should be lost", got.U16())
	}
	if got.U16() != 0 {
		t.Errorf("learned port = %d, want 0 (decoded from the zeroed TOS)", got.U16())
	}
}

package core

import (
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/controller"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/openflow"
	"floodguard/internal/switchsim"
)

// bed is the Figure 9 test topology: one switch, a POX-like controller
// running l2_learning, two benign clients and one attacker, plus
// FloodGuard.
type bed struct {
	eng      *netsim.Engine
	ctrl     *controller.Controller
	sw       *switchsim.Switch
	guard    *Guard
	alice    *switchsim.Host
	bob      *switchsim.Host
	attacker *switchsim.Host
	flooder  *switchsim.Flooder
	l2       *controller.App
}

func newBed(t *testing.T, cfg Config) *bed {
	t.Helper()
	eng := netsim.NewEngine()
	sw := switchsim.New(eng, 0x1, switchsim.SoftwareProfile())
	sw.Start()
	t.Cleanup(sw.Stop)

	ctrl := controller.New(eng)
	ctrl.BaseCost = 200 * time.Microsecond
	prog, st := apps.L2Learning()
	l2 := &controller.App{Prog: prog, State: st, CostPerEvent: time.Millisecond}
	ctrl.Register(l2)

	b := &bed{eng: eng, ctrl: ctrl, sw: sw, l2: l2}
	b.alice = switchsim.NewHost(eng, sw, "alice", 1, netpkt.MustMAC("00:00:00:00:00:0a"), netpkt.MustIPv4("10.0.0.1"), 1e9, 100*time.Microsecond)
	b.bob = switchsim.NewHost(eng, sw, "bob", 2, netpkt.MustMAC("00:00:00:00:00:0b"), netpkt.MustIPv4("10.0.0.2"), 1e9, 100*time.Microsecond)
	b.attacker = switchsim.NewHost(eng, sw, "mallory", 3, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 100*time.Microsecond)
	b.flooder = switchsim.NewFlooder(b.attacker, 1337, netpkt.FloodUDP, 64)

	controller.Bind(ctrl, sw)
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(guard.Stop)
	b.guard = guard

	// Let the session settle and the hosts introduce themselves so
	// l2_learning knows both (paper: topology discovered before attack).
	eng.RunFor(100 * time.Millisecond)
	b.exchange()
	eng.RunFor(500 * time.Millisecond)
	return b
}

// exchange has alice and bob speak so their MACs are learned.
func (b *bed) exchange() {
	f := netpkt.Flow{
		SrcMAC: b.alice.MAC, DstMAC: b.bob.MAC, SrcIP: b.alice.IP, DstIP: b.bob.IP,
		Proto: netpkt.ProtoUDP, SrcPort: 5000, DstPort: 7000,
	}
	b.alice.Send(f.Packet(100))
	b.bob.Send(f.Reverse().Packet(100))
}

func defaultTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Detection.SampleInterval = 50 * time.Millisecond
	cfg.Detection.TriggerSamples = 2
	cfg.Detection.QuietPeriod = 500 * time.Millisecond
	return cfg
}

func TestGuardStaysIdleWithoutAttack(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.eng.RunFor(5 * time.Second)
	if got := b.guard.State(); got != StateIdle {
		t.Errorf("state = %v, want idle (no attack)", got)
	}
	if b.guard.DetectedAttacks() != 0 {
		t.Errorf("DetectedAttacks = %d", b.guard.DetectedAttacks())
	}
	// Dormant: cache emits nothing, no migration rules.
	if b.guard.Caches()[0].Stats().Enqueued != 0 {
		t.Error("cache absorbed packets while idle")
	}
}

func TestGuardDetectsAndDefends(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)

	if got := b.guard.State(); got != StateDefense {
		t.Fatalf("state = %v, want defense", got)
	}
	if b.guard.DetectedAttacks() != 1 {
		t.Errorf("DetectedAttacks = %d, want 1", b.guard.DetectedAttacks())
	}

	// Migration rules present: one per ingress port (3 hosts), priority 1.
	migration := 0
	for _, e := range b.sw.Table().Entries() {
		if e.Priority == 1 {
			migration++
		}
	}
	if migration != 3 {
		t.Errorf("migration rules = %d, want 3", migration)
	}

	// Proactive rules present for the learned MACs.
	if got := b.guard.Analyzer().InstalledCount(); got < 2 {
		t.Errorf("proactive rules = %d, want >= 2 (alice and bob learned)", got)
	}

	// The flood is absorbed by the cache, not the controller: the
	// controller's data-plane packet_in rate collapses.
	if rate := b.guard.PacketInRate(); rate > 50 {
		t.Errorf("controller packet_in rate during defense = %v, want low", rate)
	}
	if st := b.guard.Caches()[0].Stats(); st.Enqueued == 0 {
		t.Error("cache absorbed nothing")
	}
	if b.guard.MigrationRate() < 100 {
		t.Errorf("migration rate = %v, want ~200", b.guard.MigrationRate())
	}
}

func TestGuardPreservesBenignTrafficDuringAttack(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second) // defense reached, proactive rules in

	// Alice→Bob rides the proactive l2 rule: delivery without queueing
	// behind the flood. (Replayed attack packets are flooded by the app
	// and also reach bob; count only the benign flow.)
	f := netpkt.Flow{
		SrcMAC: b.alice.MAC, DstMAC: b.bob.MAC, SrcIP: b.alice.IP, DstIP: b.bob.IP,
		Proto: netpkt.ProtoUDP, SrcPort: 5001, DstPort: 7001,
	}
	benign := 0
	b.bob.OnReceive = func(pkt netpkt.Packet) {
		if pkt.TpDst == 7001 {
			benign++
		}
	}
	misses := b.sw.Stats().Missed
	for i := 0; i < 20; i++ {
		b.alice.Send(f.Packet(200))
	}
	b.eng.RunFor(time.Second)
	if benign != 20 {
		t.Errorf("bob received %d of 20 benign packets during the attack", benign)
	}
	if got := b.sw.Stats().Missed - misses; got != 0 {
		t.Errorf("benign flow caused %d table misses; proactive rule should cover it", got)
	}
}

func TestGuardLearnsNewFlowViaCacheReplay(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)

	// A benign flow to a destination l2_learning has NOT learned cannot
	// match any proactive rule. The naive drop solution would lose it;
	// FloodGuard migrates it to the cache, replays it under rate limit,
	// and the app floods it — so it is still delivered and the source is
	// still learned (§IV.C: "some messages that have not been learned by
	// the applications may be useful in the future").
	unknownDst := netpkt.MustMAC("00:00:00:00:00:0e")
	f := netpkt.Flow{
		SrcMAC: b.alice.MAC, DstMAC: unknownDst, SrcIP: b.alice.IP, DstIP: netpkt.MustIPv4("10.0.0.14"),
		Proto: netpkt.ProtoTCP, SrcPort: 4444, DstPort: 8080,
	}
	delivered := 0
	b.bob.OnReceive = func(pkt netpkt.Packet) {
		if pkt.TpDst == 8080 {
			delivered++ // flooded copy reaches bob
		}
	}
	cacheBefore := b.guard.Caches()[0].Stats().Enqueued
	b.alice.Send(f.SYN())
	b.eng.RunFor(3 * time.Second)

	if got := b.guard.Caches()[0].Stats().Enqueued - cacheBefore; got == 0 {
		t.Error("benign unknown-destination packet was not migrated to the cache")
	}
	if delivered == 0 {
		t.Error("benign packet lost: replay did not deliver it")
	}
	// TCP queue isolation: the UDP flood shares the cache but the TCP
	// packet was served from its own round-robin queue.
	if got := b.guard.Caches()[0].Stats().PerQueue[0]; got > 1 {
		t.Errorf("TCP queue backlog = %d, want empty (round-robin isolation)", got)
	}
}

func TestGuardFinishAndDrainBackToIdle(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(150)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense", b.guard.State())
	}
	b.flooder.Stop()
	b.eng.RunFor(30 * time.Second) // quiet period + drain at replay rate

	if got := b.guard.State(); got != StateIdle {
		t.Fatalf("state = %v, want idle after drain", got)
	}
	// Full legal cycle recorded.
	trs := b.guard.Transitions()
	want := []FSMState{StateInit, StateDefense, StateFinish, StateIdle}
	if len(trs) != len(want) {
		t.Fatalf("transitions = %v", trs)
	}
	for i, tr := range trs {
		if tr.To != want[i] {
			t.Errorf("transition %d = %v, want %v", i, tr.To, want[i])
		}
	}
	// Migration rules removed.
	for _, e := range b.sw.Table().Entries() {
		if e.Priority == 1 {
			t.Error("migration rule still installed after finish")
		}
	}
	// Every cached packet was replayed (none lost beyond queue drops).
	st := b.guard.Caches()[0].Stats()
	if st.Backlog != 0 {
		t.Errorf("cache backlog = %d after idle", st.Backlog)
	}
	if st.Emitted+st.Dropped != st.Enqueued {
		t.Errorf("cache conservation: enqueued %d != emitted %d + dropped %d",
			st.Enqueued, st.Emitted, st.Dropped)
	}
}

func TestGuardReentersDefenseOnSecondAttack(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(150)
	b.eng.RunFor(2 * time.Second)
	b.flooder.Stop()
	b.eng.RunFor(30 * time.Second)
	if b.guard.State() != StateIdle {
		t.Fatalf("state = %v, want idle", b.guard.State())
	}
	b.flooder.Start(150)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Errorf("state = %v, want defense on second attack", b.guard.State())
	}
	if b.guard.DetectedAttacks() != 2 {
		t.Errorf("DetectedAttacks = %d, want 2", b.guard.DetectedAttacks())
	}
}

func TestGuardProtocolIndependence(t *testing.T) {
	// Unlike AvantGuard's TCP-only SYN proxy, detection and migration
	// work for TCP, UDP, ICMP and mixed floods alike.
	for _, proto := range []netpkt.FloodProtocol{netpkt.FloodTCP, netpkt.FloodUDP, netpkt.FloodICMP, netpkt.FloodMixed} {
		b := newBed(t, defaultTestConfig())
		b.flooder = switchsim.NewFlooder(b.attacker, 7, proto, 64)
		b.flooder.Start(200)
		b.eng.RunFor(2 * time.Second)
		if got := b.guard.State(); got != StateDefense {
			t.Errorf("%v flood: state = %v, want defense", proto, got)
		}
		b.guard.Stop()
	}
}

func TestSlowAttackDetectedByUtilization(t *testing.T) {
	// An attacker staying under the rate threshold still exhausts the
	// switch buffer; the utilization component must catch it (§IV.C.1:
	// "anomaly-based flooding detection is easy to get around by an
	// attacker who is willing to slowly execute the attack").
	cfg := defaultTestConfig()
	cfg.Detection.RateThresholdPPS = 1000 // rate component neutered
	cfg.Detection.UtilizationThreshold = 0.5

	eng := netsim.NewEngine()
	prof := switchsim.SoftwareProfile()
	prof.BufferSlots = 32
	prof.BufferTimeout = 20 * time.Second // controller is slow to release
	sw := switchsim.New(eng, 0x1, prof)
	sw.Start()
	defer sw.Stop()

	ctrl := controller.New(eng)
	// A deliberately expensive app so buffered packets pile up.
	prog, st := apps.L2Learning()
	ctrl.Register(&controller.App{Prog: prog, State: st, CostPerEvent: 60 * time.Millisecond})
	attacker := switchsim.NewHost(eng, sw, "slow", 1, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 0)
	controller.Bind(ctrl, sw)

	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	fl := switchsim.NewFlooder(attacker, 3, netpkt.FloodUDP, 64)
	fl.Start(40) // below the 1000 PPS rate threshold
	eng.RunFor(5 * time.Second)
	if guard.State() == StateIdle {
		t.Errorf("slow attack not detected: state = %v (buffer %d/%d, backlog %v)",
			guard.State(), sw.Stats().BufferUsed, prof.BufferSlots, ctrl.Backlog())
	}
}

func TestRateOnlyDetectorMissesSlowAttack(t *testing.T) {
	// The ablation counterpart: with the utilization component disabled,
	// the same slow attack goes unnoticed.
	cfg := defaultTestConfig()
	cfg.Detection.RateThresholdPPS = 1000
	cfg.Detection.UtilizationThreshold = 0 // disabled

	eng := netsim.NewEngine()
	prof := switchsim.SoftwareProfile()
	prof.BufferSlots = 32
	prof.BufferTimeout = 20 * time.Second
	sw := switchsim.New(eng, 0x1, prof)
	sw.Start()
	defer sw.Stop()
	ctrl := controller.New(eng)
	prog, st := apps.L2Learning()
	ctrl.Register(&controller.App{Prog: prog, State: st, CostPerEvent: 60 * time.Millisecond})
	attacker := switchsim.NewHost(eng, sw, "slow", 1, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 0)
	controller.Bind(ctrl, sw)
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	fl := switchsim.NewFlooder(attacker, 3, netpkt.FloodUDP, 64)
	fl.Start(40)
	eng.RunFor(5 * time.Second)
	if guard.State() != StateIdle {
		t.Errorf("rate-only detector state = %v, expected to miss the slow attack", guard.State())
	}
}

func TestAdaptiveRateLimitBacksOffUnderLoad(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(300)
	b.eng.RunFor(3 * time.Second)
	rate := b.guard.Caches()[0].Rate()
	rl := b.guard.cfg.RateLimit
	if rate < rl.MinPPS || rate > rl.MaxPPS {
		t.Errorf("replay rate %v outside [%v, %v]", rate, rl.MinPPS, rl.MaxPPS)
	}
}

func TestCacheResidentRulesOption(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.Analyzer.RulesInCache = true
	// Damp replay so spoofed-MAC learning does not balloon derivations.
	cfg.RateLimit.MaxPPS = 20
	cfg.Analyzer.Strategy = UpdateEveryN
	cfg.Analyzer.EveryN = 25
	b := newBed(t, cfg)
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v", b.guard.State())
	}
	// Proactive rules land in the cache's table, not switch TCAM. (The
	// switch still holds the apps' ordinary reactive rules.)
	tbl := b.guard.Caches()[0].RuleTable()
	if tbl == nil || tbl.Len() == 0 {
		t.Fatal("cache rule table empty despite RulesInCache")
	}
	if got := b.guard.Analyzer().InstalledCount(); got == 0 {
		t.Fatal("analyzer installed nothing")
	}

	// Delete bob's reactive l2 rule (as idle timeout eventually would) so
	// benign traffic misses in the switch and is migrated; the cache's
	// resident proactive rule then puts it on the priority lane.
	del := openflow.MatchAll()
	del.Wildcards &^= openflow.WildDlDst
	del.DlDst = b.bob.MAC
	dp, _ := b.ctrl.Datapath(b.sw.DPID)
	dp.Send(openflow.Framed{Msg: openflow.FlowMod{
		Match: del, Command: openflow.FlowDelete, OutPort: openflow.PortNone,
	}})
	b.eng.RunFor(100 * time.Millisecond)
	f := netpkt.Flow{
		SrcMAC: b.alice.MAC, DstMAC: b.bob.MAC, SrcIP: b.alice.IP, DstIP: b.bob.IP,
		Proto: netpkt.ProtoUDP, SrcPort: 5002, DstPort: 7002,
	}
	b.alice.Send(f.Packet(100))
	b.eng.RunFor(2 * time.Second)
	if got := b.guard.Caches()[0].Stats().PriorityServed; got == 0 {
		t.Error("priority lane unused for rule-matching benign traffic")
	}
}

func TestGuardTracksDynamicPolicyChange(t *testing.T) {
	// The Figure 8 flow: during defense, the balancer repartitions; the
	// tracker notices the version bump and refreshes the proactive rules.
	cfg := defaultTestConfig()
	eng := netsim.NewEngine()
	sw := switchsim.New(eng, 0x1, switchsim.SoftwareProfile())
	sw.Start()
	defer sw.Stop()
	ctrl := controller.New(eng)
	balCfg := apps.DefaultIPBalancerConfig()
	prog, st := apps.IPBalancer(balCfg)
	ctrl.Register(&controller.App{Prog: prog, State: st, CostPerEvent: time.Millisecond})
	attacker := switchsim.NewHost(eng, sw, "m", 1, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 0)
	switchsim.NewHost(eng, sw, "s1", 2, netpkt.MustMAC("00:00:00:00:00:01"), balCfg.ReplicaHi, 1e9, 0)
	switchsim.NewHost(eng, sw, "s2", 3, netpkt.MustMAC("00:00:00:00:00:02"), balCfg.ReplicaLo, 1e9, 0)
	controller.Bind(ctrl, sw)
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	fl := switchsim.NewFlooder(attacker, 5, netpkt.FloodUDP, 64)
	fl.Start(200)
	eng.RunFor(2 * time.Second)
	if guard.State() != StateDefense {
		t.Fatalf("state = %v", guard.State())
	}

	rewriteFor := func(srcHighBit bool) (netpkt.IPv4, bool) {
		for _, e := range sw.Table().Entries() {
			if e.Match.NwSrcMaskLen() == 1 && e.Match.NwSrc.HighBit() == srcHighBit {
				for _, a := range e.Actions {
					if set, ok := a.(openflow.ActionSetNwDst); ok {
						return set.IP, true
					}
				}
			}
		}
		return 0, false
	}
	hi, ok := rewriteFor(true)
	if !ok || hi != balCfg.ReplicaHi {
		t.Fatalf("high-half proactive rule rewrite = %v, %t", hi, ok)
	}

	// Repartition: swap the replicas (the §IV.D example).
	st.SetScalar("replicaHi", appir.IPValue(balCfg.ReplicaLo))
	st.SetScalar("replicaLo", appir.IPValue(balCfg.ReplicaHi))
	eng.RunFor(500 * time.Millisecond)

	hi, ok = rewriteFor(true)
	if !ok || hi != balCfg.ReplicaLo {
		t.Errorf("after repartition, high-half rewrite = %v (ok=%t), want %v", hi, ok, balCfg.ReplicaLo)
	}
}

func TestProtectRequiresConnectedDatapath(t *testing.T) {
	eng := netsim.NewEngine()
	ctrl := controller.New(eng)
	sw := switchsim.New(eng, 0x42, switchsim.SoftwareProfile())
	guard, err := NewGuard(eng, ctrl, defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err == nil {
		t.Error("Protect on unbound switch succeeded")
	}
}

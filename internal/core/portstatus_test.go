package core

import (
	"testing"
	"time"

	"floodguard/internal/netpkt"
	"floodguard/internal/openflow"
	"floodguard/internal/switchsim"
)

// migrationRuleCount counts the lowest-priority wildcard rules on the
// switch.
func migrationRuleCount(sw *switchsim.Switch) int {
	n := 0
	for _, e := range sw.Table().Entries() {
		if e.Priority == 1 {
			n++
		}
	}
	return n
}

func TestPortAddedMidDefenseGetsMigrationRule(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v", b.guard.State())
	}
	if got := migrationRuleCount(b.sw); got != 3 {
		t.Fatalf("migration rules = %d, want 3", got)
	}

	// A new host appears on port 4 mid-defense: the switch emits
	// PortStatus, the agent extends migration coverage.
	carol := switchsim.NewHost(b.eng, b.sw, "carol", 4, netpkt.MustMAC("00:00:00:00:00:0d"), netpkt.MustIPv4("10.0.0.4"), 1e9, 0)
	b.eng.RunFor(200 * time.Millisecond)
	if got := migrationRuleCount(b.sw); got != 4 {
		t.Fatalf("migration rules after port add = %d, want 4", got)
	}

	// Carol's table-miss traffic is migrated (TOS-tagged with port 4),
	// not sent to the controller as raw packet_ins. Pause the flood so
	// the cache delta counts only carol's packets (400ms < quiet
	// period, so the guard stays in Defense).
	b.flooder.Stop()
	b.eng.RunFor(50 * time.Millisecond)
	misses := b.sw.Stats().Missed
	cacheBefore := b.guard.Caches()[0].Stats().Enqueued
	g := netpkt.NewSpoofGen(77, netpkt.FloodUDP, 32)
	for i := 0; i < 10; i++ {
		carol.Send(g.Next())
	}
	b.eng.RunFor(350 * time.Millisecond)
	if b.guard.State() != StateDefense {
		t.Fatalf("state = %v, want still defense", b.guard.State())
	}
	if got := b.sw.Stats().Missed - misses; got != 0 {
		t.Errorf("carol's traffic caused %d raw misses despite migration", got)
	}
	if got := b.guard.Caches()[0].Stats().Enqueued - cacheBefore; got != 10 {
		t.Errorf("cache absorbed %d of carol's packets, want 10", got)
	}
}

func TestPortDeletedMidDefenseDropsItsMigrationRule(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := migrationRuleCount(b.sw); got != 3 {
		t.Fatalf("migration rules = %d, want 3", got)
	}

	b.sw.DetachPort(2) // bob's port goes away
	b.eng.RunFor(200 * time.Millisecond)
	if got := migrationRuleCount(b.sw); got != 2 {
		t.Errorf("migration rules after port delete = %d, want 2", got)
	}

	// A later Finish must not try to delete the stale rule twice (no
	// error message traffic); the remaining rules are removed cleanly.
	b.flooder.Stop()
	b.eng.RunFor(30 * time.Second)
	if got := migrationRuleCount(b.sw); got != 0 {
		t.Errorf("migration rules after finish = %d, want 0", got)
	}
}

func TestPortStatusWhileIdleOnlyTracksInventory(t *testing.T) {
	b := newBed(t, defaultTestConfig())
	switchsim.NewHost(b.eng, b.sw, "dave", 5, netpkt.MustMAC("00:00:00:00:00:0e"), netpkt.MustIPv4("10.0.0.5"), 1e9, 0)
	b.eng.RunFor(200 * time.Millisecond)
	if got := migrationRuleCount(b.sw); got != 0 {
		t.Fatalf("idle guard installed %d migration rules on port add", got)
	}
	// The new port is covered once an attack starts.
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	if got := migrationRuleCount(b.sw); got != 4 {
		t.Errorf("migration rules = %d, want 4 (including the new port)", got)
	}
}

func TestCachePortStatusIgnored(t *testing.T) {
	// The cache port's own attachment (and any chatter about it) must
	// never become an ingress migration target.
	b := newBed(t, defaultTestConfig())
	dp, _ := b.ctrl.Datapath(b.sw.DPID)
	_ = dp
	b.flooder.Start(200)
	b.eng.RunFor(2 * time.Second)
	for _, e := range b.sw.Table().Entries() {
		if e.Priority == 1 && e.Match.InPort == b.guard.cfg.CachePort {
			t.Error("migration rule installed for the cache port itself")
		}
	}
	_ = openflow.PortStatus{}
}

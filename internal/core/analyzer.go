package core

import (
	"fmt"
	"sync"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/controller"
	"floodguard/internal/flowtable"
	"floodguard/internal/openflow"
	"floodguard/internal/symexec"
	"floodguard/internal/telemetry"
)

// RuleTarget abstracts where proactive flow rules land: switch flow
// tables (the default) or the data plane cache's resident table (§IV.E).
type RuleTarget interface {
	// InstallProactive applies a flow_mod derived by the analyzer.
	InstallProactive(fm openflow.FlowMod)
}

// datapathTarget installs into a switch via its controller session.
type datapathTarget struct{ dp controller.Datapath }

func (t datapathTarget) InstallProactive(fm openflow.FlowMod) {
	t.dp.Send(openflow.Framed{Msg: fm})
}

// tableTarget installs into an in-memory table (the cache's rule table).
type tableTarget struct {
	tbl *flowtable.Table
	now func() time.Time
}

func (t tableTarget) InstallProactive(fm openflow.FlowMod) {
	// Best-effort: capacity errors surface as missing coverage, which is
	// safe (packets fall back to the ordinary queues).
	_, _ = t.tbl.Apply(fm, t.now())
}

// appAnalysis is the per-application offline artifact of Algorithm 1.
type appAnalysis struct {
	app   *controller.App
	paths []symexec.Path
	// lastVersion records, per datapath scope (sharedScope for apps with
	// shared state), the state version the current rules derive from.
	lastVersion map[uint64]uint64
	// pendingChanges counts version bumps since the last sync (for
	// UpdateEveryN), per scope.
	pendingChanges map[uint64]uint64
	// memos holds the per-scope epoch-keyed derivation caches when
	// cfg.Memoize is on (guarded by Analyzer.memoMu).
	memos map[uint64]*symexec.Memo
}

// sharedScope keys bookkeeping for apps whose state is shared across
// datapaths.
const sharedScope uint64 = 0

func (aa *appAnalysis) scopes() map[uint64]*appir.State {
	if !aa.app.PerDatapath {
		return map[uint64]*appir.State{sharedScope: aa.app.State}
	}
	return aa.app.DatapathStates()
}

// Analyzer is the proactive flow rule analyzer module: symbolic execution
// engine (offline), application tracker and proactive flow rule
// dispatcher (runtime).
type Analyzer struct {
	cfg  AnalyzerConfig
	apps []*appAnalysis

	// installed tracks the currently installed proactive rules keyed by
	// match identity, for differential updates (Figure 8).
	installed map[string]openflow.FlowMod

	// deriveMu serializes derivation runs (computeDesired / DeriveAll):
	// the epoch memos are single-deriver structures, and with AsyncDerive
	// a background derivation may still be in flight when an engine-side
	// caller asks for a synchronous one.
	deriveMu sync.Mutex
	// memoMu guards the per-app memo maps: the compute phase may run on a
	// background goroutine while a telemetry scrape sums memo stats.
	memoMu sync.Mutex

	// deriveSeconds, when armed by Register, observes every derivation's
	// wall-clock cost.
	deriveSeconds *telemetry.Histogram

	// Derivations counts Algorithm 2 executions (overhead accounting).
	// Atomic: the compute phase may increment it off the engine goroutine.
	Derivations telemetry.Counter
	// RulesInstalled and RulesRemoved count dispatcher actions.
	RulesInstalled telemetry.Counter
	RulesRemoved   telemetry.Counter
	// LastDeriveDuration is the wall-clock cost of the most recent
	// derivation (the Figure 13 quantity).
	LastDeriveDuration time.Duration
}

// NewAnalyzer builds an analyzer over the controller's registered apps.
func NewAnalyzer(cfg AnalyzerConfig, apps []*controller.App) (*Analyzer, error) {
	a := &Analyzer{cfg: cfg, installed: make(map[string]openflow.FlowMod)}
	for _, app := range apps {
		a.apps = append(a.apps, &appAnalysis{
			app:            app,
			lastVersion:    make(map[uint64]uint64),
			pendingChanges: make(map[uint64]uint64),
			memos:          make(map[uint64]*symexec.Memo),
		})
	}
	return a, nil
}

// Register attaches the analyzer's metrics to a telemetry registry:
// derivation latency histogram, run/dispatch counters, and the epoch
// memo's hit/miss totals. Call once, before derivations begin.
func (a *Analyzer) Register(reg *telemetry.Registry) {
	a.deriveSeconds = reg.Histogram("fg_derive_seconds",
		"Wall-clock cost of Algorithm 2 proactive rule derivation runs.", nil)
	reg.RegisterCounter("fg_analyzer_derivations_total",
		"Algorithm 2 executions (one per app per scope per sync).", &a.Derivations)
	reg.RegisterCounter("fg_analyzer_rules_installed_total",
		"Proactive rules dispatched to targets.", &a.RulesInstalled)
	reg.RegisterCounter("fg_analyzer_rules_removed_total",
		"Stale proactive rules withdrawn from targets.", &a.RulesRemoved)
	reg.CounterFunc("fg_analyzer_memo_hits_total",
		"Per-path derivations served from the epoch memo.", func() uint64 {
			h, _ := a.MemoStats()
			return h
		})
	reg.CounterFunc("fg_analyzer_memo_misses_total",
		"Per-path derivations the epoch memo had to re-solve.", func() uint64 {
			_, m := a.MemoStats()
			return m
		})
}

// MemoStats sums per-path cache hits and misses across every app's epoch
// memos. Zeroes when memoization is off. Safe from any goroutine.
func (a *Analyzer) MemoStats() (hits, misses uint64) {
	a.memoMu.Lock()
	defer a.memoMu.Unlock()
	for _, aa := range a.apps {
		for _, m := range aa.memos {
			h, mi := m.Stats()
			hits += h
			misses += mi
		}
	}
	return hits, misses
}

// deriveFor runs Algorithm 2 for one app scope, through the epoch memo
// when enabled. The memo guarantees the same rules in the same order as
// a direct derivation; it just re-solves only the paths whose globals
// moved since the last run.
func (a *Analyzer) deriveFor(aa *appAnalysis, scope uint64, st *appir.State) ([]symexec.ProactiveRule, error) {
	opts := symexec.DeriveOptions{Workers: a.cfg.DeriveWorkers}
	if !a.cfg.Memoize {
		return symexec.DeriveRulesOpts(aa.paths, st, opts)
	}
	a.memoMu.Lock()
	m := aa.memos[scope]
	if m == nil {
		m = symexec.NewMemo(aa.paths)
		aa.memos[scope] = m
	}
	a.memoMu.Unlock()
	return m.Derive(st, opts)
}

// Prepare runs Algorithm 1 for every application — the offline
// "preparation work" before the state machine starts (Figure 3). It is
// idempotent.
func (a *Analyzer) Prepare() error {
	for _, aa := range a.apps {
		if aa.paths != nil {
			continue
		}
		paths, err := symexec.Explore(aa.app.Prog)
		if err != nil {
			return fmt.Errorf("prepare %s: %w", aa.app.Name(), err)
		}
		aa.paths = paths
	}
	return nil
}

// Paths exposes an app's path conditions (diagnostics, Table I/III
// reporting).
func (a *Analyzer) Paths(appName string) []symexec.Path {
	for _, aa := range a.apps {
		if aa.app.Name() == appName {
			return aa.paths
		}
	}
	return nil
}

// StateSensitiveReport returns, per app, the state-sensitive variables
// discovered by analysis — the content of the paper's Table III.
func (a *Analyzer) StateSensitiveReport() map[string][]string {
	out := make(map[string][]string, len(a.apps))
	for _, aa := range a.apps {
		out[aa.app.Name()] = symexec.StateSensitiveVariables(aa.paths)
	}
	return out
}

// DeriveAll runs Algorithm 2 for every app against its live state and
// returns the merged rule set (deduplicated by match+priority).
func (a *Analyzer) DeriveAll() ([]appir.ConcreteRule, error) {
	a.deriveMu.Lock()
	defer a.deriveMu.Unlock()
	start := time.Now()
	defer func() {
		a.LastDeriveDuration = time.Since(start)
		if a.deriveSeconds != nil {
			a.deriveSeconds.ObserveDuration(a.LastDeriveDuration)
		}
	}()

	var merged []appir.ConcreteRule
	seen := make(map[string]bool)
	for _, aa := range a.apps {
		if aa.paths == nil {
			return nil, fmt.Errorf("analyzer: %s not prepared", aa.app.Name())
		}
		rules, err := a.deriveFor(aa, sharedScope, aa.app.State)
		if err != nil {
			return nil, fmt.Errorf("derive %s: %w", aa.app.Name(), err)
		}
		a.Derivations.Inc()
		aa.lastVersion[sharedScope] = aa.app.State.Version()
		aa.pendingChanges[sharedScope] = 0
		for _, r := range rules {
			rule := r.Rule
			if o := a.cfg.RuleIdleTimeoutOverride; o > 0 {
				rule.IdleTimeout = o
			}
			key := ruleKey(rule.Match, rule.Priority)
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, rule)
		}
	}
	return merged, nil
}

func ruleKey(m openflow.Match, prio uint16) string {
	return fmt.Sprintf("%s|%d", m.Key(), prio)
}

// Sync derives the current proactive rule set and reconciles the targets
// with it: new rules are installed, stale ones removed ("the variation
// should be quite simple as adding or removing a few matching rules",
// §IV.D). It returns (installed, removed).
//
// Convenience form for single-target deployments: every rule goes to
// every target. Multi-switch deployments with per-datapath apps use
// SyncScoped.
func (a *Analyzer) Sync(targets []RuleTarget) (int, int, error) {
	shared := targets
	return a.SyncScoped(nil, shared)
}

// SyncScoped reconciles proactive rules with datapath scoping: rules
// derived from a per-datapath app state are dispatched only to that
// datapath's target (plus the shared targets, e.g. a cache table);
// rules from shared-state apps go everywhere.
func (a *Analyzer) SyncScoped(scoped map[uint64]RuleTarget, shared []RuleTarget) (int, int, error) {
	return a.applyOutcome(a.computeDesired(), scoped, shared)
}

// desiredRule is one rule the analyzer wants live, with its dispatch
// scope (sharedScope or a dpid).
type desiredRule struct {
	fm    openflow.FlowMod
	scope uint64
}

// scopeVersion snapshots an app scope's state version at derivation
// time, to be committed into the tracker bookkeeping at apply time.
type scopeVersion struct {
	aa    *appAnalysis
	scope uint64
	ver   uint64
}

// deriveOutcome is the result of the compute phase of a sync: the
// desired rule set plus the bookkeeping to commit when it is applied.
type deriveOutcome struct {
	next     map[string]desiredRule
	versions []scopeVersion
	err      error
	duration time.Duration
}

// computeDesired is the derivation half of a sync: it runs Algorithm 2
// for every app scope and assembles the desired rule map. It touches
// only immutable path sets, thread-safe app states, and atomics, so it
// is safe to run off the engine goroutine while the FSM stays live —
// the engine-side bookkeeping is deferred to applyOutcome. deriveMu
// serializes it against a concurrent DeriveAll or a second sync: the
// epoch memos admit one deriver at a time.
func (a *Analyzer) computeDesired() *deriveOutcome {
	a.deriveMu.Lock()
	defer a.deriveMu.Unlock()
	start := time.Now()
	o := &deriveOutcome{next: make(map[string]desiredRule)}
	defer func() {
		o.duration = time.Since(start)
		if a.deriveSeconds != nil {
			a.deriveSeconds.ObserveDuration(o.duration)
		}
	}()

	seen := make(map[string]bool)
	for _, aa := range a.apps {
		if aa.paths == nil {
			o.err = fmt.Errorf("analyzer: %s not prepared", aa.app.Name())
			return o
		}
		for scope, st := range aa.scopes() {
			// Version captured before deriving: a mutation racing the
			// derivation re-derives next round instead of being missed.
			ver := st.Version()
			rules, err := a.deriveFor(aa, scope, st)
			if err != nil {
				o.err = fmt.Errorf("derive %s: %w", aa.app.Name(), err)
				return o
			}
			a.Derivations.Inc()
			o.versions = append(o.versions, scopeVersion{aa: aa, scope: scope, ver: ver})
			for _, r := range rules {
				rule := r.Rule
				if ov := a.cfg.RuleIdleTimeoutOverride; ov > 0 {
					rule.IdleTimeout = ov
				}
				key := fmt.Sprintf("%d|%s", scope, ruleKey(rule.Match, rule.Priority))
				if seen[key] {
					continue
				}
				seen[key] = true
				o.next[key] = desiredRule{scope: scope, fm: openflow.FlowMod{
					Match:       rule.Match,
					Command:     openflow.FlowAdd,
					IdleTimeout: rule.IdleTimeout,
					HardTimeout: rule.HardTimeout,
					Priority:    rule.Priority,
					BufferID:    openflow.NoBuffer,
					OutPort:     openflow.PortNone,
					Actions:     rule.Actions,
				}}
			}
		}
	}
	return o
}

// applyOutcome is the dispatch half of a sync: it commits the tracker
// bookkeeping and reconciles the targets with the desired rule set.
// It mutates analyzer state and sends to targets, so it must run on the
// engine goroutine.
func (a *Analyzer) applyOutcome(o *deriveOutcome, scoped map[uint64]RuleTarget, shared []RuleTarget) (int, int, error) {
	a.LastDeriveDuration = o.duration
	if o.err != nil {
		return 0, 0, o.err
	}
	for _, sv := range o.versions {
		sv.aa.lastVersion[sv.scope] = sv.ver
		sv.aa.pendingChanges[sv.scope] = 0
	}

	dispatch := func(scope uint64, fm openflow.FlowMod) {
		if scope == sharedScope {
			for _, t := range scoped {
				t.InstallProactive(fm)
			}
		} else if t, ok := scoped[scope]; ok {
			t.InstallProactive(fm)
		}
		for _, t := range shared {
			t.InstallProactive(fm)
		}
	}

	installed, removed := 0, 0
	for key, fm := range a.installed {
		if _, keep := o.next[key]; keep {
			continue
		}
		del := fm
		del.Command = openflow.FlowDeleteStrict
		dispatch(scopeOfKey(key), del)
		delete(a.installed, key)
		removed++
		a.RulesRemoved.Inc()
	}
	for key, d := range o.next {
		if old, ok := a.installed[key]; ok && openflow.ActionsString(old.Actions) == openflow.ActionsString(d.fm.Actions) {
			continue
		}
		dispatch(d.scope, d.fm)
		a.installed[key] = d.fm
		installed++
		a.RulesInstalled.Inc()
	}
	return installed, removed, nil
}

// StartAsync launches the compute phase on its own goroutine and
// returns a buffered channel that will deliver the outcome. The caller
// (the guard's completion poller) applies it engine-side with
// applyOutcome. At most one derivation may be in flight at a time: the
// epoch memos are not safe for concurrent Derive calls.
func (a *Analyzer) StartAsync() <-chan *deriveOutcome {
	ch := make(chan *deriveOutcome, 1)
	go func() { ch <- a.computeDesired() }()
	return ch
}

func scopeOfKey(key string) uint64 {
	var scope uint64
	for i := 0; i < len(key) && key[i] != '|'; i++ {
		scope = scope*10 + uint64(key[i]-'0')
	}
	return scope
}

// InstalledCount returns the number of live proactive rules.
func (a *Analyzer) InstalledCount() int { return len(a.installed) }

// Forget clears the installed-rule bookkeeping (e.g. after the defense
// ends and timeouts reclaim the rules).
func (a *Analyzer) Forget() { a.installed = make(map[string]openflow.FlowMod) }

// NeedsUpdate applies the configured §IV.D strategy to decide whether any
// app's state has drifted enough to warrant re-derivation. Interval
// strategy always reports true (the caller invokes it on its ticker).
func (a *Analyzer) NeedsUpdate() bool {
	switch a.cfg.Strategy {
	case UpdateInterval:
		return a.dirty(1)
	case UpdateEveryN:
		n := a.cfg.EveryN
		if n == 0 {
			n = 1
		}
		return a.dirty(n)
	default:
		return a.dirty(1)
	}
}

func (a *Analyzer) dirty(n uint64) bool {
	for _, aa := range a.apps {
		for scope, st := range aa.scopes() {
			v := st.Version()
			if v > aa.lastVersion[scope] {
				aa.pendingChanges[scope] = v - aa.lastVersion[scope]
			}
			if aa.pendingChanges[scope] >= n {
				return true
			}
		}
	}
	return false
}

package core

import (
	"fmt"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/controller"
	"floodguard/internal/flowtable"
	"floodguard/internal/openflow"
	"floodguard/internal/symexec"
)

// RuleTarget abstracts where proactive flow rules land: switch flow
// tables (the default) or the data plane cache's resident table (§IV.E).
type RuleTarget interface {
	// InstallProactive applies a flow_mod derived by the analyzer.
	InstallProactive(fm openflow.FlowMod)
}

// datapathTarget installs into a switch via its controller session.
type datapathTarget struct{ dp controller.Datapath }

func (t datapathTarget) InstallProactive(fm openflow.FlowMod) {
	t.dp.Send(openflow.Framed{Msg: fm})
}

// tableTarget installs into an in-memory table (the cache's rule table).
type tableTarget struct {
	tbl *flowtable.Table
	now func() time.Time
}

func (t tableTarget) InstallProactive(fm openflow.FlowMod) {
	// Best-effort: capacity errors surface as missing coverage, which is
	// safe (packets fall back to the ordinary queues).
	_, _ = t.tbl.Apply(fm, t.now())
}

// appAnalysis is the per-application offline artifact of Algorithm 1.
type appAnalysis struct {
	app   *controller.App
	paths []symexec.Path
	// lastVersion records, per datapath scope (sharedScope for apps with
	// shared state), the state version the current rules derive from.
	lastVersion map[uint64]uint64
	// pendingChanges counts version bumps since the last sync (for
	// UpdateEveryN), per scope.
	pendingChanges map[uint64]uint64
}

// sharedScope keys bookkeeping for apps whose state is shared across
// datapaths.
const sharedScope uint64 = 0

func (aa *appAnalysis) scopes() map[uint64]*appir.State {
	if !aa.app.PerDatapath {
		return map[uint64]*appir.State{sharedScope: aa.app.State}
	}
	return aa.app.DatapathStates()
}

// Analyzer is the proactive flow rule analyzer module: symbolic execution
// engine (offline), application tracker and proactive flow rule
// dispatcher (runtime).
type Analyzer struct {
	cfg  AnalyzerConfig
	apps []*appAnalysis

	// installed tracks the currently installed proactive rules keyed by
	// match identity, for differential updates (Figure 8).
	installed map[string]openflow.FlowMod

	// Derivations counts Algorithm 2 executions (overhead accounting).
	Derivations uint64
	// RulesInstalled and RulesRemoved count dispatcher actions.
	RulesInstalled uint64
	RulesRemoved   uint64
	// LastDeriveDuration is the wall-clock cost of the most recent
	// derivation (the Figure 13 quantity).
	LastDeriveDuration time.Duration
}

// NewAnalyzer builds an analyzer over the controller's registered apps.
func NewAnalyzer(cfg AnalyzerConfig, apps []*controller.App) (*Analyzer, error) {
	a := &Analyzer{cfg: cfg, installed: make(map[string]openflow.FlowMod)}
	for _, app := range apps {
		a.apps = append(a.apps, &appAnalysis{
			app:            app,
			lastVersion:    make(map[uint64]uint64),
			pendingChanges: make(map[uint64]uint64),
		})
	}
	return a, nil
}

// Prepare runs Algorithm 1 for every application — the offline
// "preparation work" before the state machine starts (Figure 3). It is
// idempotent.
func (a *Analyzer) Prepare() error {
	for _, aa := range a.apps {
		if aa.paths != nil {
			continue
		}
		paths, err := symexec.Explore(aa.app.Prog)
		if err != nil {
			return fmt.Errorf("prepare %s: %w", aa.app.Name(), err)
		}
		aa.paths = paths
	}
	return nil
}

// Paths exposes an app's path conditions (diagnostics, Table I/III
// reporting).
func (a *Analyzer) Paths(appName string) []symexec.Path {
	for _, aa := range a.apps {
		if aa.app.Name() == appName {
			return aa.paths
		}
	}
	return nil
}

// StateSensitiveReport returns, per app, the state-sensitive variables
// discovered by analysis — the content of the paper's Table III.
func (a *Analyzer) StateSensitiveReport() map[string][]string {
	out := make(map[string][]string, len(a.apps))
	for _, aa := range a.apps {
		out[aa.app.Name()] = symexec.StateSensitiveVariables(aa.paths)
	}
	return out
}

// DeriveAll runs Algorithm 2 for every app against its live state and
// returns the merged rule set (deduplicated by match+priority).
func (a *Analyzer) DeriveAll() ([]appir.ConcreteRule, error) {
	start := time.Now()
	defer func() { a.LastDeriveDuration = time.Since(start) }()

	var merged []appir.ConcreteRule
	seen := make(map[string]bool)
	for _, aa := range a.apps {
		if aa.paths == nil {
			return nil, fmt.Errorf("analyzer: %s not prepared", aa.app.Name())
		}
		rules, err := symexec.DeriveRules(aa.paths, aa.app.State)
		if err != nil {
			return nil, fmt.Errorf("derive %s: %w", aa.app.Name(), err)
		}
		a.Derivations++
		aa.lastVersion[sharedScope] = aa.app.State.Version()
		aa.pendingChanges[sharedScope] = 0
		for _, r := range rules {
			rule := r.Rule
			if o := a.cfg.RuleIdleTimeoutOverride; o > 0 {
				rule.IdleTimeout = o
			}
			key := ruleKey(rule.Match, rule.Priority)
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, rule)
		}
	}
	return merged, nil
}

func ruleKey(m openflow.Match, prio uint16) string {
	return fmt.Sprintf("%s|%d", m.Key(), prio)
}

// Sync derives the current proactive rule set and reconciles the targets
// with it: new rules are installed, stale ones removed ("the variation
// should be quite simple as adding or removing a few matching rules",
// §IV.D). It returns (installed, removed).
//
// Convenience form for single-target deployments: every rule goes to
// every target. Multi-switch deployments with per-datapath apps use
// SyncScoped.
func (a *Analyzer) Sync(targets []RuleTarget) (int, int, error) {
	shared := targets
	return a.SyncScoped(nil, shared)
}

// SyncScoped reconciles proactive rules with datapath scoping: rules
// derived from a per-datapath app state are dispatched only to that
// datapath's target (plus the shared targets, e.g. a cache table);
// rules from shared-state apps go everywhere.
func (a *Analyzer) SyncScoped(scoped map[uint64]RuleTarget, shared []RuleTarget) (int, int, error) {
	start := time.Now()
	defer func() { a.LastDeriveDuration = time.Since(start) }()

	type desired struct {
		fm    openflow.FlowMod
		scope uint64 // sharedScope or a dpid
	}
	next := make(map[string]desired)
	seen := make(map[string]bool)
	for _, aa := range a.apps {
		if aa.paths == nil {
			return 0, 0, fmt.Errorf("analyzer: %s not prepared", aa.app.Name())
		}
		for scope, st := range aa.scopes() {
			rules, err := symexec.DeriveRules(aa.paths, st)
			if err != nil {
				return 0, 0, fmt.Errorf("derive %s: %w", aa.app.Name(), err)
			}
			a.Derivations++
			aa.lastVersion[scope] = st.Version()
			aa.pendingChanges[scope] = 0
			for _, r := range rules {
				rule := r.Rule
				if o := a.cfg.RuleIdleTimeoutOverride; o > 0 {
					rule.IdleTimeout = o
				}
				key := fmt.Sprintf("%d|%s", scope, ruleKey(rule.Match, rule.Priority))
				if seen[key] {
					continue
				}
				seen[key] = true
				next[key] = desired{scope: scope, fm: openflow.FlowMod{
					Match:       rule.Match,
					Command:     openflow.FlowAdd,
					IdleTimeout: rule.IdleTimeout,
					HardTimeout: rule.HardTimeout,
					Priority:    rule.Priority,
					BufferID:    openflow.NoBuffer,
					OutPort:     openflow.PortNone,
					Actions:     rule.Actions,
				}}
			}
		}
	}

	dispatch := func(scope uint64, fm openflow.FlowMod) {
		if scope == sharedScope {
			for _, t := range scoped {
				t.InstallProactive(fm)
			}
		} else if t, ok := scoped[scope]; ok {
			t.InstallProactive(fm)
		}
		for _, t := range shared {
			t.InstallProactive(fm)
		}
	}

	installed, removed := 0, 0
	for key, fm := range a.installed {
		if _, keep := next[key]; keep {
			continue
		}
		del := fm
		del.Command = openflow.FlowDeleteStrict
		dispatch(scopeOfKey(key), del)
		delete(a.installed, key)
		removed++
		a.RulesRemoved++
	}
	for key, d := range next {
		if old, ok := a.installed[key]; ok && openflow.ActionsString(old.Actions) == openflow.ActionsString(d.fm.Actions) {
			continue
		}
		dispatch(d.scope, d.fm)
		a.installed[key] = d.fm
		installed++
		a.RulesInstalled++
	}
	return installed, removed, nil
}

func scopeOfKey(key string) uint64 {
	var scope uint64
	for i := 0; i < len(key) && key[i] != '|'; i++ {
		scope = scope*10 + uint64(key[i]-'0')
	}
	return scope
}

// InstalledCount returns the number of live proactive rules.
func (a *Analyzer) InstalledCount() int { return len(a.installed) }

// Forget clears the installed-rule bookkeeping (e.g. after the defense
// ends and timeouts reclaim the rules).
func (a *Analyzer) Forget() { a.installed = make(map[string]openflow.FlowMod) }

// NeedsUpdate applies the configured §IV.D strategy to decide whether any
// app's state has drifted enough to warrant re-derivation. Interval
// strategy always reports true (the caller invokes it on its ticker).
func (a *Analyzer) NeedsUpdate() bool {
	switch a.cfg.Strategy {
	case UpdateInterval:
		return a.dirty(1)
	case UpdateEveryN:
		n := a.cfg.EveryN
		if n == 0 {
			n = 1
		}
		return a.dirty(n)
	default:
		return a.dirty(1)
	}
}

func (a *Analyzer) dirty(n uint64) bool {
	for _, aa := range a.apps {
		for scope, st := range aa.scopes() {
			v := st.Version()
			if v > aa.lastVersion[scope] {
				aa.pendingChanges[scope] = v - aa.lastVersion[scope]
			}
			if aa.pendingChanges[scope] >= n {
				return true
			}
		}
	}
	return false
}

package core

import (
	"testing"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/controller"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/openflow"
	"floodguard/internal/switchsim"
)

// TestMultiSwitchPerDatapathDefense exercises the §IV.E deployment shape:
// two patched switches under one controller and one shared data plane
// cache, with l2_learning instantiated per datapath (as POX does). The
// analyzer must derive per-switch proactive rules that reference each
// switch's OWN ports.
func TestMultiSwitchPerDatapathDefense(t *testing.T) {
	eng := netsim.NewEngine()
	s1 := switchsim.New(eng, 1, switchsim.SoftwareProfile())
	s2 := switchsim.New(eng, 2, switchsim.SoftwareProfile())
	s1.Start()
	s2.Start()
	defer s1.Stop()
	defer s2.Stop()

	// a on s1 port 1; b on s2 port 1; patch on port 2 of both.
	a := switchsim.NewHost(eng, s1, "a", 1, netpkt.MustMAC("00:00:00:00:00:0a"), netpkt.MustIPv4("10.0.0.1"), 1e9, 0)
	b := switchsim.NewHost(eng, s2, "b", 1, netpkt.MustMAC("00:00:00:00:00:0b"), netpkt.MustIPv4("10.0.0.2"), 1e9, 0)
	mal := switchsim.NewHost(eng, s2, "m", 3, netpkt.MustMAC("00:00:00:00:00:0c"), netpkt.MustIPv4("10.0.0.3"), 1e9, 0)
	switchsim.Patch(s1, 2, s2, 2, 10e9, 50*time.Microsecond)

	ctrl := controller.New(eng)
	ctrl.BaseCost = 100 * time.Microsecond
	prog, st := apps.L2Learning()
	l2 := &controller.App{Prog: prog, State: st, CostPerEvent: time.Millisecond, PerDatapath: true}
	ctrl.Register(l2)
	controller.Bind(ctrl, s1, s2)

	cfg := DefaultConfig()
	cfg.Detection.SampleInterval = 50 * time.Millisecond
	cfg.Detection.TriggerSamples = 2
	guard, err := NewGuard(eng, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range []*switchsim.Switch{s1, s2} {
		if err := guard.Protect(sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()
	eng.RunFor(200 * time.Millisecond)

	// a and b exchange: each switch's l2 instance learns both MACs with
	// its own port numbering.
	flow := netpkt.Flow{
		SrcMAC: a.MAC, DstMAC: b.MAC, SrcIP: a.IP, DstIP: b.IP,
		Proto: netpkt.ProtoUDP, SrcPort: 5000, DstPort: 7000,
	}
	a.Send(flow.Packet(100))
	eng.RunFor(500 * time.Millisecond)
	b.Send(flow.Reverse().Packet(100))
	eng.RunFor(time.Second)
	if b.Received() == 0 || a.Received() == 0 {
		t.Fatalf("warm-up exchange failed: a=%d b=%d", a.Received(), b.Received())
	}

	// Attack from s2.
	fl := switchsim.NewFlooder(mal, 11, netpkt.FloodUDP, 64)
	fl.Start(300)
	eng.RunFor(2 * time.Second)
	if guard.State() != StateDefense {
		t.Fatalf("state = %v, want defense", guard.State())
	}

	// Per-switch proactive rules must carry each switch's own port map:
	// on s1, b is reachable via the patch (port 2); on s2, b is local
	// (port 1).
	wantPort := map[uint64]uint16{1: 2, 2: 1}
	for _, sw := range []*switchsim.Switch{s1, s2} {
		found := false
		for _, e := range sw.Table().Entries() {
			if e.Match.Wildcards&openflow.WildDlDst != 0 || e.Match.DlDst != b.MAC {
				continue
			}
			if len(e.Actions) == 0 {
				continue
			}
			out, ok := e.Actions[0].(openflow.ActionOutput)
			if !ok {
				continue
			}
			found = true
			if out.Port != wantPort[sw.DPID] {
				t.Errorf("switch %d: rule for b outputs to %d, want %d", sw.DPID, out.Port, wantPort[sw.DPID])
			}
		}
		if !found {
			t.Errorf("switch %d: no proactive rule for b", sw.DPID)
		}
	}

	// Benign cross-switch traffic still flows during the attack.
	before := b.Received()
	for i := 0; i < 10; i++ {
		a.Send(flow.Packet(100))
	}
	eng.RunFor(time.Second)
	if got := b.Received() - before; got < 10 {
		t.Errorf("b received %d of 10 cross-switch packets during attack", got)
	}

	// The shared cache absorbed s2's flood, tagged with its origin.
	if guard.Caches()[0].Stats().Enqueued == 0 {
		t.Error("shared cache absorbed nothing")
	}

	// Both switches carry migration rules while defending.
	for _, sw := range []*switchsim.Switch{s1, s2} {
		migration := 0
		for _, e := range sw.Table().Entries() {
			if e.Priority == 1 {
				migration++
			}
		}
		if migration == 0 {
			t.Errorf("switch %d has no migration rules", sw.DPID)
		}
	}
}

func TestProtectRejectsDPIDZero(t *testing.T) {
	eng := netsim.NewEngine()
	sw := switchsim.New(eng, 0, switchsim.SoftwareProfile())
	ctrl := controller.New(eng)
	controller.Bind(ctrl, sw)
	guard, err := NewGuard(eng, ctrl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Protect(sw); err == nil {
		t.Error("Protect accepted datapath id 0 (reserved for shared scope)")
	}
}

func TestPerDatapathStateIsolation(t *testing.T) {
	prog, st := apps.L2Learning()
	app := &controller.App{Prog: prog, State: st, PerDatapath: true}
	s1 := app.StateFor(1)
	s2 := app.StateFor(2)
	if s1 == s2 {
		t.Fatal("datapaths share state despite PerDatapath")
	}
	s1.Learn("macToPort", macVal(0xaa), portVal(1))
	if s2.Contains("macToPort", macVal(0xaa)) {
		t.Error("learning on dp1 leaked into dp2")
	}
	if app.State.Contains("macToPort", macVal(0xaa)) {
		t.Error("learning on dp1 leaked into the template state")
	}
	// Idempotent.
	if app.StateFor(1) != s1 {
		t.Error("StateFor not stable")
	}
}

func macVal(b byte) appir.Value    { return appir.MACValue(netpkt.MACFromUint64(uint64(b))) }
func portVal(p uint16) appir.Value { return appir.U16Value(p) }

// Package core implements FLOODGUARD itself: the four-state machine that
// coordinates the defense (paper Figure 3), the proactive flow rule
// analyzer (symbolic execution engine + application tracker + dispatcher,
// §IV.B), and the packet migration module's migration agent (§IV.C.1).
// The data plane cache it steers lives in internal/dpcache.
package core

import (
	"fmt"
	"time"
)

// FSMState is a state of the FloodGuard state machine.
type FSMState int

// Figure 3's states.
const (
	// StateIdle: no attack; only the monitoring component is active.
	StateIdle FSMState = iota + 1
	// StateInit: attack detected; migration rules are being installed
	// and proactive flow rules derived.
	StateInit
	// StateDefense: proactive rules installed and kept up to date; the
	// cache replays table-miss packets under rate limit.
	StateDefense
	// StateFinish: attack over; migration stopped; the cache drains its
	// remaining packets.
	StateFinish
	// StateDegraded: Defense with the data plane cache unreachable — the
	// sideband to the cache box is down, so migration is withdrawn and
	// the guard falls back to direct rate-limited packet_in handling
	// (the paper's pre-migration behavior) until the channel heals.
	// This state extends Figure 3 for channel-failure tolerance.
	StateDegraded
)

// String names the state.
func (s FSMState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateInit:
		return "init"
	case StateDefense:
		return "defense"
	case StateFinish:
		return "finish"
	case StateDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Transition records one state change for diagnostics and tests.
type Transition struct {
	From, To FSMState
	At       time.Time
	Reason   string
}

// fsm enforces the legal transition relation of Figure 3.
type fsm struct {
	state   FSMState
	history []Transition
	onEnter func(tr Transition)
}

func newFSM() *fsm { return &fsm{state: StateIdle} }

var legalTransitions = map[FSMState][]FSMState{
	StateIdle:    {StateInit},
	StateInit:    {StateDefense},
	StateDefense: {StateFinish, StateDegraded},
	StateFinish:  {StateIdle, StateInit},
	// Degraded heals back into Defense when the sideband recovers, or
	// winds down through Finish when the attack ends first.
	StateDegraded: {StateDefense, StateFinish},
}

// to transitions the machine, panicking on illegal edges (a programming
// error, not a runtime condition).
func (f *fsm) to(next FSMState, at time.Time, reason string) error {
	for _, ok := range legalTransitions[f.state] {
		if ok == next {
			tr := Transition{From: f.state, To: next, At: at, Reason: reason}
			f.state = next
			f.history = append(f.history, tr)
			if f.onEnter != nil {
				f.onEnter(tr)
			}
			return nil
		}
	}
	return fmt.Errorf("floodguard: illegal transition %v -> %v (%s)", f.state, next, reason)
}

// State returns the current state.
func (f *fsm) State() FSMState { return f.state }

// History returns the transitions so far.
func (f *fsm) History() []Transition {
	out := make([]Transition, len(f.history))
	copy(out, f.history)
	return out
}

package solver

import (
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

func condEq(f appir.Field, v appir.Value, want bool) appir.Cond {
	return appir.Cond{Expr: appir.FieldEq(f, v), Want: want}
}

func TestFeasibleDetectsContradictions(t *testing.T) {
	ipA := appir.IPValue(netpkt.MustIPv4("10.0.0.1"))
	ipB := appir.IPValue(netpkt.MustIPv4("10.0.0.2"))
	inTable := appir.FieldIn(appir.FEthDst, "macToPort")
	tests := []struct {
		name string
		give []appir.Cond
		want bool
	}{
		{"empty", nil, true},
		{"single eq", []appir.Cond{condEq(appir.FNwSrc, ipA, true)}, true},
		{"eq conflict", []appir.Cond{
			condEq(appir.FNwSrc, ipA, true),
			condEq(appir.FNwSrc, ipB, true),
		}, false},
		{"eq and neq same value", []appir.Cond{
			condEq(appir.FNwSrc, ipA, true),
			condEq(appir.FNwSrc, ipA, false),
		}, false},
		{"neq then eq same value", []appir.Cond{
			condEq(appir.FNwSrc, ipA, false),
			condEq(appir.FNwSrc, ipA, true),
		}, false},
		{"eq and neq different values", []appir.Cond{
			condEq(appir.FNwSrc, ipA, true),
			condEq(appir.FNwSrc, ipB, false),
		}, true},
		{"same membership both ways", []appir.Cond{
			{Expr: inTable, Want: true},
			{Expr: inTable, Want: false},
		}, false},
		{"membership once", []appir.Cond{{Expr: inTable, Want: true}}, true},
		{"highbit vs low value", []appir.Cond{
			condEq(appir.FNwSrc, appir.IPValue(netpkt.MustIPv4("10.0.0.1")), true),
			{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: true},
		}, false},
		{"highbit vs high value", []appir.Cond{
			condEq(appir.FNwSrc, appir.IPValue(netpkt.MustIPv4("192.0.0.1")), true),
			{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: true},
		}, true},
	}
	for _, tt := range tests {
		if got := Feasible(tt.give); got != tt.want {
			t.Errorf("%s: Feasible = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestConcretizeEquality(t *testing.T) {
	st := appir.NewState()
	st.SetScalar("vip", appir.IPValue(netpkt.MustIPv4("10.10.10.10")))
	conds := []appir.Cond{
		{Expr: appir.FieldEqScalar(appir.FNwDst, "vip"), Want: true},
		condEq(appir.FEthType, appir.U16Value(netpkt.EtherTypeIPv4), true),
	}
	asgs := Concretize(conds, st)
	if len(asgs) != 1 {
		t.Fatalf("assignments = %d, want 1", len(asgs))
	}
	a := asgs[0]
	if a.Field(appir.FNwDst).Exact.IP() != netpkt.MustIPv4("10.10.10.10") {
		t.Errorf("nw_dst binding = %v", a.Field(appir.FNwDst))
	}
	if a.Penalty != 0 {
		t.Errorf("penalty = %d", a.Penalty)
	}
}

func TestConcretizeMembershipFansOut(t *testing.T) {
	st := appir.NewState()
	for i := 1; i <= 4; i++ {
		st.Learn("macToPort", appir.MACValue(netpkt.MACFromUint64(uint64(i))), appir.U16Value(uint16(i)))
	}
	conds := []appir.Cond{{Expr: appir.FieldIn(appir.FEthDst, "macToPort"), Want: true}}
	asgs := Concretize(conds, st)
	if len(asgs) != 4 {
		t.Fatalf("assignments = %d, want 4 (one per table entry)", len(asgs))
	}
	seen := make(map[uint64]bool)
	for _, a := range asgs {
		seen[a.Field(appir.FEthDst).Exact.Bits] = true
	}
	if len(seen) != 4 {
		t.Errorf("bindings not distinct: %v", seen)
	}
}

func TestConcretizeEmptyTableYieldsNothing(t *testing.T) {
	st := appir.NewState()
	conds := []appir.Cond{{Expr: appir.FieldIn(appir.FEthDst, "macToPort"), Want: true}}
	if asgs := Concretize(conds, st); len(asgs) != 0 {
		t.Errorf("assignments from empty table = %d, want 0", len(asgs))
	}
}

func TestConcretizeNegativeMembershipFiltersBoundValues(t *testing.T) {
	st := appir.NewState()
	blocked := netpkt.MACFromUint64(2)
	st.Learn("all", appir.MACValue(netpkt.MACFromUint64(1)), appir.U16Value(1))
	st.Learn("all", appir.MACValue(blocked), appir.U16Value(2))
	st.Learn("blocked", appir.MACValue(blocked), appir.BoolValue(true))
	conds := []appir.Cond{
		{Expr: appir.FieldIn(appir.FEthSrc, "all"), Want: true},
		{Expr: appir.FieldIn(appir.FEthSrc, "blocked"), Want: false},
	}
	asgs := Concretize(conds, st)
	if len(asgs) != 1 {
		t.Fatalf("assignments = %d, want 1 (blocked entry filtered)", len(asgs))
	}
	if asgs[0].Field(appir.FEthSrc).Exact.MAC() != netpkt.MACFromUint64(1) {
		t.Errorf("surviving binding = %v", asgs[0].Field(appir.FEthSrc))
	}
	if asgs[0].Penalty != 0 {
		t.Errorf("penalty = %d, want 0 (bound field, real filter)", asgs[0].Penalty)
	}
}

func TestConcretizeNegativeOnUnboundFieldPenalises(t *testing.T) {
	st := appir.NewState()
	conds := []appir.Cond{
		condEq(appir.FEthDst, appir.MACValue(netpkt.Broadcast), false),
	}
	asgs := Concretize(conds, st)
	if len(asgs) != 1 {
		t.Fatalf("assignments = %d, want 1", len(asgs))
	}
	if asgs[0].Penalty != 1 {
		t.Errorf("penalty = %d, want 1", asgs[0].Penalty)
	}
	if bound := asgs[0].Bound(appir.FEthDst); bound {
		t.Error("unrepresentable negation bound the field")
	}
}

func TestConcretizeHighBit(t *testing.T) {
	st := appir.NewState()
	hb := appir.Cond{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: true}
	asgs := Concretize([]appir.Cond{hb}, st)
	if len(asgs) != 1 {
		t.Fatalf("assignments = %d", len(asgs))
	}
	b := asgs[0].Field(appir.FNwSrc)
	if !b.IsPrefix || b.PrefixLen != 1 || b.Prefix != netpkt.MustIPv4("128.0.0.0") {
		t.Errorf("binding = %v, want 128.0.0.0/1", b)
	}
	// Negated: 0.0.0.0/1.
	hb.Want = false
	asgs = Concretize([]appir.Cond{hb}, st)
	b = asgs[0].Field(appir.FNwSrc)
	if !b.IsPrefix || b.Prefix != 0 || b.PrefixLen != 1 {
		t.Errorf("negated binding = %v, want 0.0.0.0/1", b)
	}
}

func TestConcretizePrefixTable(t *testing.T) {
	st := appir.NewState()
	st.AddPrefix("routes", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
	st.AddPrefix("routes", appir.IPValue(netpkt.MustIPv4("10.1.0.0")), 16, appir.U16Value(2))
	conds := []appir.Cond{{Expr: appir.FieldInPrefixes(appir.FNwDst, "routes"), Want: true}}
	asgs := Concretize(conds, st)
	if len(asgs) != 2 {
		t.Fatalf("assignments = %d, want 2", len(asgs))
	}
	// PrefixBits must order the /16 above the /8 so priority boosting
	// reproduces longest-prefix-match semantics.
	bits := map[int]bool{}
	for _, a := range asgs {
		bits[a.PrefixBits] = true
	}
	if !bits[8] || !bits[16] {
		t.Errorf("prefix bits = %v, want {8,16}", bits)
	}
}

func TestConcretizePrefixThenExactIntersection(t *testing.T) {
	st := appir.NewState()
	st.AddPrefix("routes", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
	inside := []appir.Cond{
		{Expr: appir.FieldInPrefixes(appir.FNwDst, "routes"), Want: true},
		condEq(appir.FNwDst, appir.IPValue(netpkt.MustIPv4("10.2.3.4")), true),
	}
	asgs := Concretize(inside, st)
	if len(asgs) != 1 || asgs[0].Field(appir.FNwDst).IsPrefix {
		t.Fatalf("intersection = %+v, want exact binding inside prefix", asgs)
	}
	outside := []appir.Cond{
		{Expr: appir.FieldInPrefixes(appir.FNwDst, "routes"), Want: true},
		condEq(appir.FNwDst, appir.IPValue(netpkt.MustIPv4("11.2.3.4")), true),
	}
	if asgs := Concretize(outside, st); len(asgs) != 0 {
		t.Errorf("contradictory intersection produced %d assignments", len(asgs))
	}
}

func TestConcretizeNestedPrefixes(t *testing.T) {
	st := appir.NewState()
	st.AddPrefix("a", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.BoolValue(true))
	st.AddPrefix("b", appir.IPValue(netpkt.MustIPv4("10.1.0.0")), 16, appir.BoolValue(true))
	conds := []appir.Cond{
		{Expr: appir.FieldInPrefixes(appir.FNwSrc, "a"), Want: true},
		{Expr: appir.FieldInPrefixes(appir.FNwSrc, "b"), Want: true},
	}
	asgs := Concretize(conds, st)
	if len(asgs) != 1 {
		t.Fatalf("assignments = %d, want 1", len(asgs))
	}
	b := asgs[0].Field(appir.FNwSrc)
	if b.PrefixLen != 16 {
		t.Errorf("intersected prefix len = %d, want 16 (narrower wins)", b.PrefixLen)
	}
	// Disjoint prefixes are infeasible.
	st2 := appir.NewState()
	st2.AddPrefix("a", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.BoolValue(true))
	st2.AddPrefix("b", appir.IPValue(netpkt.MustIPv4("11.0.0.0")), 8, appir.BoolValue(true))
	if asgs := Concretize(conds, st2); len(asgs) != 0 {
		t.Errorf("disjoint prefixes produced %d assignments", len(asgs))
	}
}

func TestConcretizeGroundTruth(t *testing.T) {
	st := appir.NewState()
	st.SetScalar("flag", appir.BoolValue(true))
	stTrue := []appir.Cond{{Expr: appir.ScalarRef{Name: "flag"}, Want: true}}
	if asgs := Concretize(stTrue, st); len(asgs) != 1 {
		t.Errorf("true ground cond: %d assignments, want 1", len(asgs))
	}
	stFalse := []appir.Cond{{Expr: appir.ScalarRef{Name: "flag"}, Want: false}}
	if asgs := Concretize(stFalse, st); len(asgs) != 0 {
		t.Errorf("false ground cond: %d assignments, want 0", len(asgs))
	}
}

func TestAssignmentSatisfies(t *testing.T) {
	st := appir.NewState()
	st.Learn("macToPort", appir.MACValue(netpkt.MustMAC("00:00:00:00:00:0a")), appir.U16Value(1))
	conds := []appir.Cond{
		{Expr: appir.FieldIn(appir.FEthDst, "macToPort"), Want: true},
		{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: true},
	}
	asgs := Concretize(conds, st)
	if len(asgs) != 1 {
		t.Fatal("want one assignment")
	}
	good := netpkt.Packet{
		EthDst: netpkt.MustMAC("00:00:00:00:00:0a"),
		NwSrc:  netpkt.MustIPv4("200.0.0.1"),
	}
	if !asgs[0].Satisfies(&good, 1) {
		t.Error("satisfying packet rejected")
	}
	bad := good
	bad.NwSrc = netpkt.MustIPv4("20.0.0.1")
	if asgs[0].Satisfies(&bad, 1) {
		t.Error("low-bit packet accepted by highbit assignment")
	}
	bad2 := good
	bad2.EthDst = netpkt.MustMAC("00:00:00:00:00:0b")
	if asgs[0].Satisfies(&bad2, 1) {
		t.Error("wrong-dst packet accepted")
	}
}

func TestBindingString(t *testing.T) {
	b := Binding{IsPrefix: true, Prefix: netpkt.MustIPv4("10.0.0.0"), PrefixLen: 8}
	if b.String() != "10.0.0.0/8" {
		t.Errorf("String = %q", b.String())
	}
	b2 := Binding{Exact: appir.U16Value(80)}
	if b2.String() != "80" {
		t.Errorf("String = %q", b2.String())
	}
}

package solver

import (
	"math/rand"
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

// TestConcretizeSoundnessProperty: every assignment returned by
// Concretize satisfies the path condition it was derived from, evaluated
// concretely on a packet drawn from the assignment.
func TestConcretizeSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	st := appir.NewState()
	for i := 1; i <= 6; i++ {
		st.Learn("macs", appir.MACValue(netpkt.MACFromUint64(uint64(i))), appir.U16Value(uint16(i)))
	}
	st.AddPrefix("nets", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
	st.AddPrefix("nets", appir.IPValue(netpkt.MustIPv4("192.168.0.0")), 16, appir.U16Value(2))
	st.SetScalar("vip", appir.IPValue(netpkt.MustIPv4("10.10.10.10")))

	atoms := []appir.Expr{
		appir.FieldIn(appir.FEthDst, "macs"),
		appir.FieldInPrefixes(appir.FNwDst, "nets"),
		appir.FieldEqScalar(appir.FNwDst, "vip"),
		appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}},
		appir.FieldEq(appir.FNwProto, appir.U8Value(netpkt.ProtoUDP)),
		appir.FieldEq(appir.FEthType, appir.U16Value(netpkt.EtherTypeIPv4)),
	}

	for trial := 0; trial < 500; trial++ {
		// Draw a random conjunction of 1-4 atoms with random polarity.
		var conds []appir.Cond
		for _, idx := range r.Perm(len(atoms))[:1+r.Intn(3)] {
			conds = append(conds, appir.Cond{Expr: atoms[idx], Want: r.Intn(4) != 0})
		}
		asgs := Concretize(conds, st)
		for _, a := range asgs {
			pkt, inPort := materialise(&a, r)
			if !a.Satisfies(&pkt, inPort) {
				t.Fatalf("trial %d: assignment does not satisfy its own materialisation", trial)
			}
			// Check every *positive bound* conjunct concretely; penalised
			// negatives are intentionally relaxed (priority bands carve
			// them out), so skip conjuncts on unbound fields.
			env := &appir.Env{State: st, Packet: &pkt, InPort: inPort}
			for _, c := range conds {
				if !c.Want {
					continue
				}
				v, err := appir.EvalExpr(c.Expr, env)
				if err != nil {
					t.Fatalf("trial %d: eval %s: %v", trial, c.Expr, err)
				}
				if !v.Bool() {
					t.Fatalf("trial %d: positive conjunct %s false on materialised packet %v (assignment %v)",
						trial, c.Expr, &pkt, a)
				}
			}
		}
	}
}

// materialise builds a packet meeting every binding of the assignment,
// with unbound fields randomised.
func materialise(a *Assignment, r *rand.Rand) (netpkt.Packet, uint16) {
	pkt := netpkt.Packet{
		EthSrc:  netpkt.MACFromUint64(r.Uint64() & 0xfeffffffffff),
		EthDst:  netpkt.MACFromUint64(r.Uint64() & 0xfeffffffffff),
		EthType: netpkt.EtherTypeIPv4,
		NwSrc:   netpkt.IPv4(r.Uint32()),
		NwDst:   netpkt.IPv4(r.Uint32()),
		NwProto: uint8(r.Intn(256)),
		TpSrc:   uint16(r.Intn(1 << 16)),
		TpDst:   uint16(r.Intn(1 << 16)),
	}
	inPort := uint16(r.Intn(8) + 1)
	for _, f := range appir.Fields {
		b, bound := a.Get(f)
		if !bound {
			continue
		}
		var v appir.Value
		if b.IsPrefix {
			// Random address inside the prefix.
			mask := uint32(0)
			if b.PrefixLen < 32 {
				mask = ^uint32(0) >> b.PrefixLen
			}
			v = appir.IPValue(b.Prefix | netpkt.IPv4(r.Uint32()&mask))
		} else {
			v = b.Exact
		}
		switch f {
		case appir.FInPort:
			inPort = v.U16()
		case appir.FEthSrc:
			pkt.EthSrc = v.MAC()
		case appir.FEthDst:
			pkt.EthDst = v.MAC()
		case appir.FEthType:
			pkt.EthType = v.U16()
		case appir.FNwSrc:
			pkt.NwSrc = v.IP()
		case appir.FNwDst:
			pkt.NwDst = v.IP()
		case appir.FNwProto:
			pkt.NwProto = v.U8()
		case appir.FNwTOS:
			pkt.NwTOS = v.U8()
		case appir.FTpSrc:
			pkt.TpSrc = v.U16()
		case appir.FTpDst:
			pkt.TpDst = v.U16()
		}
	}
	return pkt, inPort
}

func TestConcretizeContradictoryScalarEquality(t *testing.T) {
	st := appir.NewState()
	st.SetScalar("a", appir.U16Value(1))
	st.SetScalar("b", appir.U16Value(2))
	conds := []appir.Cond{
		{Expr: appir.Eq{A: appir.ScalarRef{Name: "a"}, B: appir.ScalarRef{Name: "b"}}, Want: true},
	}
	if asgs := Concretize(conds, st); len(asgs) != 0 {
		t.Errorf("contradictory ground equality yielded %d assignments", len(asgs))
	}
	conds[0].Want = false
	if asgs := Concretize(conds, st); len(asgs) != 1 {
		t.Errorf("true ground inequality yielded %d assignments", len(asgs))
	}
}

func TestConcretizeNegatedHighBitIntersectsPrefix(t *testing.T) {
	st := appir.NewState()
	st.AddPrefix("nets", appir.IPValue(netpkt.MustIPv4("192.168.0.0")), 16, appir.U16Value(1))
	// 192.168/16 is entirely in the high half: not-highbit contradicts it.
	conds := []appir.Cond{
		{Expr: appir.FieldInPrefixes(appir.FNwSrc, "nets"), Want: true},
		{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: false},
	}
	if asgs := Concretize(conds, st); len(asgs) != 0 {
		t.Errorf("prefix in the high half survived a not-highbit constraint: %d assignments", len(asgs))
	}
}

func TestFeasibleUnsupportedShapesAreConservative(t *testing.T) {
	// Feasible must never claim UNSAT for shapes it cannot reason about.
	weird := []appir.Cond{
		{Expr: appir.Eq{A: appir.FieldRef{F: appir.FEthSrc}, B: appir.FieldRef{F: appir.FEthDst}}, Want: true},
		{Expr: appir.Or{A: appir.ScalarRef{Name: "x"}, B: appir.ScalarRef{Name: "y"}}, Want: false},
	}
	if !Feasible(weird) {
		t.Error("Feasible refuted constraints it cannot analyse")
	}
}

package solver

import (
	"fmt"
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

// benchState builds a state with n learned hosts and n/4 prefix routes —
// the fan-out sources that dominate attack-time concretization.
func benchState(n int) *appir.State {
	st := appir.NewState()
	for i := 0; i < n; i++ {
		st.Learn("hosts",
			appir.MACValue(netpkt.MAC{0, 0, byte(i >> 16), byte(i >> 8), byte(i), 1}),
			appir.U16Value(uint16(i%48+1)))
	}
	for i := 0; i < n/4+1; i++ {
		st.AddPrefix("nets",
			appir.IPValue(netpkt.IPv4(uint32(10<<24|(i%250)<<16))), 16,
			appir.U16Value(uint16(i%48+1)))
	}
	st.SetScalar("vip", appir.IPValue(netpkt.MustIPv4("10.0.0.9")))
	return st
}

// benchConds is an L2-learning-style path condition: one table fan-out,
// one exact bind, one negative filter.
func benchConds() []appir.Cond {
	return []appir.Cond{
		{Expr: appir.FieldEq(appir.FEthType, appir.U16Value(netpkt.EtherTypeIPv4)), Want: true},
		{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true},
		{Expr: appir.FieldEqScalar(appir.FNwSrc, "vip"), Want: false},
	}
}

// BenchmarkConcretize measures the pooled entry point (what DeriveRules
// calls with no worker arena) at increasing table sizes.
func BenchmarkConcretize(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			st := benchState(n)
			conds := benchConds()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if asgs := Concretize(conds, st); len(asgs) != n {
					b.Fatalf("assignments = %d, want %d", len(asgs), n)
				}
			}
		})
	}
}

// BenchmarkConcretizeArena measures a dedicated per-worker arena — the
// derivation-pool configuration, where the working set is reused across
// every path the worker handles.
func BenchmarkConcretizeArena(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			st := benchState(n)
			conds := benchConds()
			ar := NewArena()
			ConcretizeArena(conds, st, ar) // warm the free list
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if asgs := ConcretizeArena(conds, st, ar); len(asgs) != n {
					b.Fatalf("assignments = %d, want %d", len(asgs), n)
				}
			}
		})
	}
}

// mapAssignment reproduces the pre-arena representation (bindings in a
// heap map, fresh clone per fan-out item, no recycling) so the
// before/after alloc comparison stays runnable after the switch to the
// array-backed Assignment.
type mapAssignment struct {
	fields map[appir.Field]Binding
}

func (a *mapAssignment) clone() *mapAssignment {
	out := &mapAssignment{fields: make(map[appir.Field]Binding, len(a.fields))}
	for k, v := range a.fields {
		out.fields[k] = v
	}
	return out
}

// BenchmarkConcretizeNoArena re-creates the old allocation profile of
// the table fan-out — the baseline for the alloc-reduction target.
func BenchmarkConcretizeNoArena(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			st := benchState(n)
			entries := st.TableEntries("hosts")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work := []*mapAssignment{{fields: map[appir.Field]Binding{
					appir.FEthType: {Exact: appir.U16Value(netpkt.EtherTypeIPv4)},
				}}}
				var next []*mapAssignment
				for _, a := range work {
					for _, ent := range entries {
						c := a.clone()
						c.fields[appir.FEthSrc] = Binding{Exact: ent.Key}
						next = append(next, c)
					}
				}
				if len(next) != n {
					b.Fatalf("fan-out = %d, want %d", len(next), n)
				}
			}
		})
	}
}

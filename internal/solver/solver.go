// Package solver checks and concretizes the path conditions produced by
// symbolic execution of controller applications. It plays the role STP
// plays in the paper's prototype, specialised to the constraint language
// that packet_in handlers generate: equalities between header fields and
// ground values, membership in global tables and prefix tables, and the
// high-bit test.
//
// Two entry points:
//
//   - Feasible: an offline structural satisfiability check used to prune
//     contradictory paths during symbolic execution (Algorithm 1), when
//     table contents are still symbolic.
//   - Concretize: the runtime step of Algorithm 2 — substitute the live
//     values of the global variables into a path condition and enumerate
//     the concrete field assignments (match skeletons) that satisfy it.
package solver

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

// Binding constrains one packet field in a concrete assignment.
type Binding struct {
	// Exact, when not zero, pins the field to a single value.
	Exact appir.Value
	// IsPrefix constrains an IP field to a prefix instead.
	IsPrefix  bool
	Prefix    netpkt.IPv4
	PrefixLen int
}

// String renders the binding.
func (b Binding) String() string {
	if b.IsPrefix {
		return fmt.Sprintf("%v/%d", b.Prefix, b.PrefixLen)
	}
	return b.Exact.String()
}

// numFields sizes the per-assignment binding array; appir numbers its
// fields densely from 1, so index f holds field f's binding directly.
const numFields = int(appir.FTpDst) + 1

// Assignment is one satisfying combination of field constraints for a
// path condition, plus a priority penalty: each unrepresentable negative
// constraint (a ≠ or ∉ on an otherwise unconstrained field) leaves the
// field wildcarded and relies on the sibling branch's more specific,
// higher-priority rules to carve out the excluded cases.
//
// Bindings live in a fixed-size array indexed by field with a presence
// bitmask, not a map: cloning an assignment during table fan-out is then
// a plain struct copy, and enumeration order is the canonical
// match-structure field order rather than map order. Assignment values
// are comparable and copies are fully independent.
type Assignment struct {
	fields  [numFields]Binding
	bound   uint16 // bit f set ⇔ fields[f] holds a binding
	Penalty int
	// PrefixBits is the total prefix specificity, used to order
	// overlapping prefix rules so that OpenFlow priority reproduces
	// longest-prefix-match semantics.
	PrefixBits int
}

// Get returns the binding for f and whether f is constrained.
func (a *Assignment) Get(f appir.Field) (Binding, bool) {
	if int(f) >= numFields || a.bound&(1<<f) == 0 {
		return Binding{}, false
	}
	return a.fields[f], true
}

// Field returns the binding for f (the zero Binding when unconstrained).
func (a *Assignment) Field(f appir.Field) Binding {
	b, _ := a.Get(f)
	return b
}

// Bound reports whether f is constrained.
func (a *Assignment) Bound(f appir.Field) bool {
	return int(f) < numFields && a.bound&(1<<f) != 0
}

// Len returns the number of bound fields.
func (a *Assignment) Len() int { return bits.OnesCount16(a.bound) }

func (a *Assignment) set(f appir.Field, b Binding) {
	a.fields[f] = b
	a.bound |= 1 << f
}

// String renders the bound fields in canonical order.
func (a Assignment) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, f := range appir.Fields {
		b, ok := a.Get(f)
		if !ok {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%s=%s", f, b)
	}
	if a.Penalty != 0 {
		fmt.Fprintf(&sb, " penalty=%d", a.Penalty)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Arena recycles Assignment structs across the fan-out/filter passes of
// Concretize, and its work lists across calls. Table-membership
// constraints clone one work item per table entry; without reuse that is
// one heap allocation per entry per call, which at attack time —
// thousands of paths against thousand-entry tables — is the dominant
// cost of Algorithm 2. Every work item is returned to the arena before
// ConcretizeArena returns; the survivors are copied into the result
// slice by value, so nothing handed to the caller aliases arena memory.
//
// An Arena is not safe for concurrent use. Each derivation worker owns
// one; callers without one get a pooled arena via Concretize.
type Arena struct {
	free []*Assignment
	// work and next are the two scratch lists the fan-out passes
	// ping-pong between; reused across calls.
	work []*Assignment
	next []*Assignment
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

func (ar *Arena) get() *Assignment {
	if n := len(ar.free); n > 0 {
		a := ar.free[n-1]
		ar.free[n-1] = nil
		ar.free = ar.free[:n-1]
		return a
	}
	return &Assignment{}
}

func (ar *Arena) put(a *Assignment) {
	*a = Assignment{}
	ar.free = append(ar.free, a)
}

func (ar *Arena) putAll(work []*Assignment) {
	for _, a := range work {
		ar.put(a)
	}
}

// cloneFrom produces a recycled copy of a.
func (ar *Arena) cloneFrom(a *Assignment) *Assignment {
	out := ar.get()
	*out = *a
	return out
}

var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// bindExact narrows a field to one value; reports false on contradiction.
func (a *Assignment) bindExact(f appir.Field, v appir.Value) bool {
	cur, ok := a.Get(f)
	if !ok {
		a.set(f, Binding{Exact: v})
		return true
	}
	if cur.IsPrefix {
		if v.Kind != appir.KindIP || !v.IP().InPrefix(cur.Prefix, cur.PrefixLen) {
			return false
		}
		a.PrefixBits -= cur.PrefixLen
		a.set(f, Binding{Exact: v})
		return true
	}
	return cur.Exact == v
}

// bindPrefix narrows an IP field to a prefix; reports false on
// contradiction.
func (a *Assignment) bindPrefix(f appir.Field, prefix netpkt.IPv4, length int) bool {
	cur, ok := a.Get(f)
	if !ok {
		a.set(f, Binding{IsPrefix: true, Prefix: prefix, PrefixLen: length})
		a.PrefixBits += length
		return true
	}
	if !cur.IsPrefix {
		return cur.Exact.Kind == appir.KindIP && cur.Exact.IP().InPrefix(prefix, length)
	}
	// Two prefixes: keep the longer if nested, contradiction otherwise.
	if cur.PrefixLen >= length {
		return cur.Prefix.InPrefix(prefix, length)
	}
	if !prefix.InPrefix(cur.Prefix, cur.PrefixLen) {
		return false
	}
	a.PrefixBits += length - cur.PrefixLen
	a.set(f, Binding{IsPrefix: true, Prefix: prefix, PrefixLen: length})
	return true
}

// Feasible performs the offline structural check: it returns false only
// when the conjunction is contradictory regardless of global state.
// Memberships in (symbolic) tables are never refuted, but the same
// membership asserted both ways is.
func Feasible(conds []appir.Cond) bool {
	eq := make(map[string]appir.Value)      // fieldExpr -> pinned value
	neq := make(map[string]map[uint64]bool) // fieldExpr -> excluded bits
	seen := make(map[string]bool)           // rendered cond -> want
	for _, c := range conds {
		key := c.Expr.String()
		if want, ok := seen[key]; ok && want != c.Want {
			return false
		}
		seen[key] = c.Want

		e, isEq := c.Expr.(appir.Eq)
		if !isEq {
			continue
		}
		fr, cv, ok := fieldConst(e)
		if !ok {
			continue
		}
		fk := fr.String()
		if c.Want {
			if old, ok := eq[fk]; ok && old != cv {
				return false
			}
			if neq[fk][cv.Bits] {
				return false
			}
			eq[fk] = cv
		} else {
			if old, ok := eq[fk]; ok && old == cv {
				return false
			}
			if neq[fk] == nil {
				neq[fk] = make(map[uint64]bool)
			}
			neq[fk][cv.Bits] = true
		}
	}
	// HighBit vs pinned-value contradiction.
	for _, c := range conds {
		hb, ok := c.Expr.(appir.HighBit)
		if !ok {
			continue
		}
		fr, ok := hb.A.(appir.FieldRef)
		if !ok {
			continue
		}
		if v, pinned := eq[fr.String()]; pinned && v.Kind == appir.KindIP {
			if v.IP().HighBit() != c.Want {
				return false
			}
		}
	}
	return true
}

func fieldConst(e appir.Eq) (appir.FieldRef, appir.Value, bool) {
	if fr, ok := e.A.(appir.FieldRef); ok {
		if c, ok := e.B.(appir.Const); ok {
			return fr, c.V, true
		}
	}
	if fr, ok := e.B.(appir.FieldRef); ok {
		if c, ok := e.A.(appir.Const); ok {
			return fr, c.V, true
		}
	}
	return appir.FieldRef{}, appir.Value{}, false
}

// groundValue evaluates an expression containing no field references
// against the live state. ok is false if the expression does reference a
// field or errors.
func groundValue(e appir.Expr, st *appir.State) (appir.Value, bool) {
	switch x := e.(type) {
	case appir.Const:
		return x.V, true
	case appir.ScalarRef:
		return valOK(st.Scalar(x.Name))
	case appir.Lookup:
		k, ok := groundValue(x.Key, st)
		if !ok {
			return appir.Value{}, false
		}
		return valOK(st.LookupTable(x.Table, k))
	case appir.LookupPrefix:
		k, ok := groundValue(x.Key, st)
		if !ok {
			return appir.Value{}, false
		}
		return valOK(st.LookupLPM(x.Table, k))
	default:
		return appir.Value{}, false
	}
}

func valOK(v appir.Value, ok bool) (appir.Value, bool) {
	if !ok {
		return appir.Value{}, false
	}
	return v, ok
}

// Concretize enumerates the assignments satisfying conds once the global
// variables take their live values from st (Algorithm 2's assign_value
// step). The result may be empty (the path is currently unreachable).
// Constraints that cannot be enumerated or represented in a single
// OpenFlow match (e.g. a ≠ on an unbound field) cost a priority penalty
// and leave the field wildcarded.
func Concretize(conds []appir.Cond, st *appir.State) []Assignment {
	ar := arenaPool.Get().(*Arena)
	out := ConcretizeArena(conds, st, ar)
	arenaPool.Put(ar)
	return out
}

// ConcretizeArena is Concretize with a caller-owned allocation arena —
// the form the parallel derivation workers use, one arena per worker, so
// repeated calls reuse the same working set instead of re-allocating it.
// The result never aliases arena memory.
func ConcretizeArena(conds []appir.Cond, st *appir.State, ar *Arena) []Assignment {
	work := append(ar.work[:0], ar.get())
	ar.work = work

	// Pass 1: positive binding constraints narrow or fan out.
	for _, c := range conds {
		if !c.Want {
			continue
		}
		var err error
		work, err = applyPositive(work, c.Expr, st, ar)
		if err != nil || len(work) == 0 {
			ar.putAll(work)
			return nil
		}
	}
	// Pass 2: negative constraints filter or penalise.
	for _, c := range conds {
		if c.Want {
			continue
		}
		work = applyNegative(work, c.Expr, st, ar)
		if len(work) == 0 {
			return nil
		}
	}
	out := make([]Assignment, len(work))
	for i, a := range work {
		out[i] = *a // value copy: the result never aliases arena memory
		ar.put(a)
	}
	return out
}

// applyPositive narrows every assignment by one positive constraint.
// Dropped and fanned-out work items are returned to the arena; on error
// the input list is recycled too (the caller abandons the derivation).
func applyPositive(work []*Assignment, e appir.Expr, st *appir.State, ar *Arena) ([]*Assignment, error) {
	switch x := e.(type) {
	case appir.Eq:
		if fr, ok := x.A.(appir.FieldRef); ok {
			if v, ok := groundValue(x.B, st); ok {
				return filterMap(work, ar, func(a *Assignment) bool { return a.bindExact(fr.F, v) }), nil
			}
		}
		if fr, ok := x.B.(appir.FieldRef); ok {
			if v, ok := groundValue(x.A, st); ok {
				return filterMap(work, ar, func(a *Assignment) bool { return a.bindExact(fr.F, v) }), nil
			}
		}
		// Ground == ground: a runtime truth test.
		va, aok := groundValue(x.A, st)
		vb, bok := groundValue(x.B, st)
		if aok && bok {
			if va == vb {
				return work, nil
			}
			ar.putAll(work)
			return nil, nil
		}
		ar.putAll(work)
		return nil, fmt.Errorf("solver: unsupported equality %s", x)
	case appir.InTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			ar.putAll(work)
			return nil, fmt.Errorf("solver: membership key %s is not a field", x.Key)
		}
		entries := st.TableEntries(x.Table)
		next := ar.next[:0]
		for _, a := range work {
			for _, ent := range entries {
				c := ar.cloneFrom(a)
				if c.bindExact(fr.F, ent.Key) {
					next = append(next, c)
				} else {
					ar.put(c)
				}
			}
			ar.put(a)
		}
		ar.next = next
		ar.work, ar.next = ar.next, ar.work
		return next, nil
	case appir.InPrefixTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			ar.putAll(work)
			return nil, fmt.Errorf("solver: prefix-membership key %s is not a field", x.Key)
		}
		entries := st.PrefixEntries(x.Table)
		next := ar.next[:0]
		for _, a := range work {
			for _, ent := range entries {
				c := ar.cloneFrom(a)
				if c.bindPrefix(fr.F, ent.Prefix.IP(), ent.Len) {
					next = append(next, c)
				} else {
					ar.put(c)
				}
			}
			ar.put(a)
		}
		ar.next = next
		ar.work, ar.next = ar.next, ar.work
		return next, nil
	case appir.HighBit:
		fr, ok := x.A.(appir.FieldRef)
		if !ok {
			ar.putAll(work)
			return nil, fmt.Errorf("solver: highbit of %s is not a field", x.A)
		}
		return filterMap(work, ar, func(a *Assignment) bool {
			return a.bindPrefix(fr.F, netpkt.MustIPv4("128.0.0.0"), 1)
		}), nil
	default:
		// A bare ground boolean (e.g. scalar flag).
		if v, ok := groundValue(e, st); ok {
			if v.Bool() {
				return work, nil
			}
			ar.putAll(work)
			return nil, nil
		}
		ar.putAll(work)
		return nil, fmt.Errorf("solver: unsupported positive constraint %s", e)
	}
}

// applyNegative filters assignments by one negated constraint; unbound
// fields take a penalty instead of a binding. Dropped items are recycled.
func applyNegative(work []*Assignment, e appir.Expr, st *appir.State, ar *Arena) []*Assignment {
	switch x := e.(type) {
	case appir.Eq:
		fr, fok := x.A.(appir.FieldRef)
		other := x.B
		if !fok {
			fr, fok = x.B.(appir.FieldRef)
			other = x.A
		}
		if fok {
			v, ok := groundValue(other, st)
			if !ok {
				return penalise(work)
			}
			return filterMap(work, ar, func(a *Assignment) bool {
				b, bound := a.Get(fr.F)
				if !bound || b.IsPrefix {
					// Prefix bindings cannot express ≠ either; for a
					// bound prefix the excluded point is a measure-zero
					// subset, so penalise rather than drop.
					a.Penalty++
					return true
				}
				return b.Exact != v
			})
		}
		va, aok := groundValue(x.A, st)
		vb, bok := groundValue(x.B, st)
		if aok && bok {
			if va != vb {
				return work
			}
			ar.putAll(work)
			return nil
		}
		return penalise(work)
	case appir.InTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			return penalise(work)
		}
		return filterMap(work, ar, func(a *Assignment) bool {
			b, bound := a.Get(fr.F)
			if !bound || b.IsPrefix {
				a.Penalty++
				return true
			}
			return !st.Contains(x.Table, b.Exact)
		})
	case appir.InPrefixTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			return penalise(work)
		}
		return filterMap(work, ar, func(a *Assignment) bool {
			b, bound := a.Get(fr.F)
			if !bound {
				a.Penalty++
				return true
			}
			if b.IsPrefix {
				a.Penalty++
				return true
			}
			return !st.InAnyPrefix(x.Table, b.Exact)
		})
	case appir.HighBit:
		fr, ok := x.A.(appir.FieldRef)
		if !ok {
			return penalise(work)
		}
		// not highbit == prefix 0.0.0.0/1.
		return filterMap(work, ar, func(a *Assignment) bool {
			return a.bindPrefix(fr.F, 0, 1)
		})
	default:
		if v, ok := groundValue(e, st); ok {
			if !v.Bool() {
				return work
			}
			ar.putAll(work)
			return nil
		}
		return penalise(work)
	}
}

// filterMap keeps the assignments passing keep (which may narrow them
// in place) and recycles the rest, reusing the input slice's backing
// array.
func filterMap(work []*Assignment, ar *Arena, keep func(*Assignment) bool) []*Assignment {
	out := work[:0]
	for _, a := range work {
		if keep(a) {
			out = append(out, a)
		} else {
			ar.put(a)
		}
	}
	return out
}

func penalise(work []*Assignment) []*Assignment {
	for _, a := range work {
		a.Penalty++
	}
	return work
}

// Satisfies reports whether a concrete packet (on inPort) meets every
// binding of the assignment — used by property tests to validate
// soundness of concretization.
func (a *Assignment) Satisfies(p *netpkt.Packet, inPort uint16) bool {
	for _, f := range appir.Fields {
		b, bound := a.Get(f)
		if !bound {
			continue
		}
		v := appir.FieldOf(p, inPort, f)
		if b.IsPrefix {
			if v.Kind != appir.KindIP || !v.IP().InPrefix(b.Prefix, b.PrefixLen) {
				return false
			}
			continue
		}
		if v != b.Exact {
			return false
		}
	}
	return true
}

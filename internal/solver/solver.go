// Package solver checks and concretizes the path conditions produced by
// symbolic execution of controller applications. It plays the role STP
// plays in the paper's prototype, specialised to the constraint language
// that packet_in handlers generate: equalities between header fields and
// ground values, membership in global tables and prefix tables, and the
// high-bit test.
//
// Two entry points:
//
//   - Feasible: an offline structural satisfiability check used to prune
//     contradictory paths during symbolic execution (Algorithm 1), when
//     table contents are still symbolic.
//   - Concretize: the runtime step of Algorithm 2 — substitute the live
//     values of the global variables into a path condition and enumerate
//     the concrete field assignments (match skeletons) that satisfy it.
package solver

import (
	"fmt"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

// Binding constrains one packet field in a concrete assignment.
type Binding struct {
	// Exact, when not zero, pins the field to a single value.
	Exact appir.Value
	// IsPrefix constrains an IP field to a prefix instead.
	IsPrefix  bool
	Prefix    netpkt.IPv4
	PrefixLen int
}

// String renders the binding.
func (b Binding) String() string {
	if b.IsPrefix {
		return fmt.Sprintf("%v/%d", b.Prefix, b.PrefixLen)
	}
	return b.Exact.String()
}

// Assignment is one satisfying combination of field constraints for a
// path condition, plus a priority penalty: each unrepresentable negative
// constraint (a ≠ or ∉ on an otherwise unconstrained field) leaves the
// field wildcarded and relies on the sibling branch's more specific,
// higher-priority rules to carve out the excluded cases.
type Assignment struct {
	Fields  map[appir.Field]Binding
	Penalty int
	// PrefixBits is the total prefix specificity, used to order
	// overlapping prefix rules so that OpenFlow priority reproduces
	// longest-prefix-match semantics.
	PrefixBits int
}

func newAssignment() *Assignment {
	return &Assignment{Fields: make(map[appir.Field]Binding)}
}

func (a *Assignment) clone() *Assignment {
	out := &Assignment{
		Fields:     make(map[appir.Field]Binding, len(a.Fields)),
		Penalty:    a.Penalty,
		PrefixBits: a.PrefixBits,
	}
	for k, v := range a.Fields {
		out.Fields[k] = v
	}
	return out
}

// bindExact narrows a field to one value; reports false on contradiction.
func (a *Assignment) bindExact(f appir.Field, v appir.Value) bool {
	cur, ok := a.Fields[f]
	if !ok {
		a.Fields[f] = Binding{Exact: v}
		return true
	}
	if cur.IsPrefix {
		if v.Kind != appir.KindIP || !v.IP().InPrefix(cur.Prefix, cur.PrefixLen) {
			return false
		}
		a.PrefixBits -= cur.PrefixLen
		a.Fields[f] = Binding{Exact: v}
		return true
	}
	return cur.Exact == v
}

// bindPrefix narrows an IP field to a prefix; reports false on
// contradiction.
func (a *Assignment) bindPrefix(f appir.Field, prefix netpkt.IPv4, length int) bool {
	cur, ok := a.Fields[f]
	if !ok {
		a.Fields[f] = Binding{IsPrefix: true, Prefix: prefix, PrefixLen: length}
		a.PrefixBits += length
		return true
	}
	if !cur.IsPrefix {
		return cur.Exact.Kind == appir.KindIP && cur.Exact.IP().InPrefix(prefix, length)
	}
	// Two prefixes: keep the longer if nested, contradiction otherwise.
	if cur.PrefixLen >= length {
		return cur.Prefix.InPrefix(prefix, length)
	}
	if !prefix.InPrefix(cur.Prefix, cur.PrefixLen) {
		return false
	}
	a.PrefixBits += length - cur.PrefixLen
	a.Fields[f] = Binding{IsPrefix: true, Prefix: prefix, PrefixLen: length}
	return true
}

// Feasible performs the offline structural check: it returns false only
// when the conjunction is contradictory regardless of global state.
// Memberships in (symbolic) tables are never refuted, but the same
// membership asserted both ways is.
func Feasible(conds []appir.Cond) bool {
	eq := make(map[string]appir.Value)      // fieldExpr -> pinned value
	neq := make(map[string]map[uint64]bool) // fieldExpr -> excluded bits
	seen := make(map[string]bool)           // rendered cond -> want
	for _, c := range conds {
		key := c.Expr.String()
		if want, ok := seen[key]; ok && want != c.Want {
			return false
		}
		seen[key] = c.Want

		e, isEq := c.Expr.(appir.Eq)
		if !isEq {
			continue
		}
		fr, cv, ok := fieldConst(e)
		if !ok {
			continue
		}
		fk := fr.String()
		if c.Want {
			if old, ok := eq[fk]; ok && old != cv {
				return false
			}
			if neq[fk][cv.Bits] {
				return false
			}
			eq[fk] = cv
		} else {
			if old, ok := eq[fk]; ok && old == cv {
				return false
			}
			if neq[fk] == nil {
				neq[fk] = make(map[uint64]bool)
			}
			neq[fk][cv.Bits] = true
		}
	}
	// HighBit vs pinned-value contradiction.
	for _, c := range conds {
		hb, ok := c.Expr.(appir.HighBit)
		if !ok {
			continue
		}
		fr, ok := hb.A.(appir.FieldRef)
		if !ok {
			continue
		}
		if v, pinned := eq[fr.String()]; pinned && v.Kind == appir.KindIP {
			if v.IP().HighBit() != c.Want {
				return false
			}
		}
	}
	return true
}

func fieldConst(e appir.Eq) (appir.FieldRef, appir.Value, bool) {
	if fr, ok := e.A.(appir.FieldRef); ok {
		if c, ok := e.B.(appir.Const); ok {
			return fr, c.V, true
		}
	}
	if fr, ok := e.B.(appir.FieldRef); ok {
		if c, ok := e.A.(appir.Const); ok {
			return fr, c.V, true
		}
	}
	return appir.FieldRef{}, appir.Value{}, false
}

// groundValue evaluates an expression containing no field references
// against the live state. ok is false if the expression does reference a
// field or errors.
func groundValue(e appir.Expr, st *appir.State) (appir.Value, bool) {
	switch x := e.(type) {
	case appir.Const:
		return x.V, true
	case appir.ScalarRef:
		return valOK(st.Scalar(x.Name))
	case appir.Lookup:
		k, ok := groundValue(x.Key, st)
		if !ok {
			return appir.Value{}, false
		}
		return valOK(st.LookupTable(x.Table, k))
	case appir.LookupPrefix:
		k, ok := groundValue(x.Key, st)
		if !ok {
			return appir.Value{}, false
		}
		return valOK(st.LookupLPM(x.Table, k))
	default:
		return appir.Value{}, false
	}
}

func valOK(v appir.Value, ok bool) (appir.Value, bool) {
	if !ok {
		return appir.Value{}, false
	}
	return v, ok
}

// Concretize enumerates the assignments satisfying conds once the global
// variables take their live values from st (Algorithm 2's assign_value
// step). The result may be empty (the path is currently unreachable).
// Constraints that cannot be enumerated or represented in a single
// OpenFlow match (e.g. a ≠ on an unbound field) cost a priority penalty
// and leave the field wildcarded.
func Concretize(conds []appir.Cond, st *appir.State) []Assignment {
	work := []*Assignment{newAssignment()}

	// Pass 1: positive binding constraints narrow or fan out.
	for _, c := range conds {
		if !c.Want {
			continue
		}
		var err error
		work, err = applyPositive(work, c.Expr, st)
		if err != nil || len(work) == 0 {
			return nil
		}
	}
	// Pass 2: negative constraints filter or penalise.
	for _, c := range conds {
		if c.Want {
			continue
		}
		work = applyNegative(work, c.Expr, st)
		if len(work) == 0 {
			return nil
		}
	}
	out := make([]Assignment, len(work))
	for i, a := range work {
		out[i] = *a
	}
	return out
}

// applyPositive narrows every assignment by one positive constraint.
func applyPositive(work []*Assignment, e appir.Expr, st *appir.State) ([]*Assignment, error) {
	switch x := e.(type) {
	case appir.Eq:
		if fr, ok := x.A.(appir.FieldRef); ok {
			if v, ok := groundValue(x.B, st); ok {
				return filterMap(work, func(a *Assignment) bool { return a.bindExact(fr.F, v) }), nil
			}
		}
		if fr, ok := x.B.(appir.FieldRef); ok {
			if v, ok := groundValue(x.A, st); ok {
				return filterMap(work, func(a *Assignment) bool { return a.bindExact(fr.F, v) }), nil
			}
		}
		// Ground == ground: a runtime truth test.
		va, aok := groundValue(x.A, st)
		vb, bok := groundValue(x.B, st)
		if aok && bok {
			if va == vb {
				return work, nil
			}
			return nil, nil
		}
		return nil, fmt.Errorf("solver: unsupported equality %s", x)
	case appir.InTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			return nil, fmt.Errorf("solver: membership key %s is not a field", x.Key)
		}
		entries := st.TableEntries(x.Table)
		var next []*Assignment
		for _, a := range work {
			for _, ent := range entries {
				c := a.clone()
				if c.bindExact(fr.F, ent.Key) {
					next = append(next, c)
				}
			}
		}
		return next, nil
	case appir.InPrefixTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			return nil, fmt.Errorf("solver: prefix-membership key %s is not a field", x.Key)
		}
		entries := st.PrefixEntries(x.Table)
		var next []*Assignment
		for _, a := range work {
			for _, ent := range entries {
				c := a.clone()
				if c.bindPrefix(fr.F, ent.Prefix.IP(), ent.Len) {
					next = append(next, c)
				}
			}
		}
		return next, nil
	case appir.HighBit:
		fr, ok := x.A.(appir.FieldRef)
		if !ok {
			return nil, fmt.Errorf("solver: highbit of %s is not a field", x.A)
		}
		return filterMap(work, func(a *Assignment) bool {
			return a.bindPrefix(fr.F, netpkt.MustIPv4("128.0.0.0"), 1)
		}), nil
	default:
		// A bare ground boolean (e.g. scalar flag).
		if v, ok := groundValue(e, st); ok {
			if v.Bool() {
				return work, nil
			}
			return nil, nil
		}
		return nil, fmt.Errorf("solver: unsupported positive constraint %s", e)
	}
}

// applyNegative filters assignments by one negated constraint; unbound
// fields take a penalty instead of a binding.
func applyNegative(work []*Assignment, e appir.Expr, st *appir.State) []*Assignment {
	switch x := e.(type) {
	case appir.Eq:
		fr, fok := x.A.(appir.FieldRef)
		other := x.B
		if !fok {
			fr, fok = x.B.(appir.FieldRef)
			other = x.A
		}
		if fok {
			v, ok := groundValue(other, st)
			if !ok {
				return penalise(work)
			}
			return filterMapKeep(work, func(a *Assignment) bool {
				b, bound := a.Fields[fr.F]
				if !bound || b.IsPrefix {
					// Prefix bindings cannot express ≠ either; for a
					// bound prefix the excluded point is a measure-zero
					// subset, so penalise rather than drop.
					a.Penalty++
					return true
				}
				return b.Exact != v
			})
		}
		va, aok := groundValue(x.A, st)
		vb, bok := groundValue(x.B, st)
		if aok && bok {
			if va != vb {
				return work
			}
			return nil
		}
		return penalise(work)
	case appir.InTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			return penalise(work)
		}
		return filterMapKeep(work, func(a *Assignment) bool {
			b, bound := a.Fields[fr.F]
			if !bound || b.IsPrefix {
				a.Penalty++
				return true
			}
			return !st.Contains(x.Table, b.Exact)
		})
	case appir.InPrefixTable:
		fr, ok := x.Key.(appir.FieldRef)
		if !ok {
			return penalise(work)
		}
		return filterMapKeep(work, func(a *Assignment) bool {
			b, bound := a.Fields[fr.F]
			if !bound {
				a.Penalty++
				return true
			}
			if b.IsPrefix {
				a.Penalty++
				return true
			}
			return !st.InAnyPrefix(x.Table, b.Exact)
		})
	case appir.HighBit:
		fr, ok := x.A.(appir.FieldRef)
		if !ok {
			return penalise(work)
		}
		// not highbit == prefix 0.0.0.0/1.
		return filterMap(work, func(a *Assignment) bool {
			return a.bindPrefix(fr.F, 0, 1)
		})
	default:
		if v, ok := groundValue(e, st); ok {
			if !v.Bool() {
				return work
			}
			return nil
		}
		return penalise(work)
	}
}

func filterMap(work []*Assignment, keep func(*Assignment) bool) []*Assignment {
	out := work[:0]
	for _, a := range work {
		if keep(a) {
			out = append(out, a)
		}
	}
	return out
}

func filterMapKeep(work []*Assignment, keep func(*Assignment) bool) []*Assignment {
	return filterMap(work, keep)
}

func penalise(work []*Assignment) []*Assignment {
	for _, a := range work {
		a.Penalty++
	}
	return work
}

// Satisfies reports whether a concrete packet (on inPort) meets every
// binding of the assignment — used by property tests to validate
// soundness of concretization.
func (a *Assignment) Satisfies(p *netpkt.Packet, inPort uint16) bool {
	for f, b := range a.Fields {
		v := appir.FieldOf(p, inPort, f)
		if b.IsPrefix {
			if v.Kind != appir.KindIP || !v.IP().InPrefix(b.Prefix, b.PrefixLen) {
				return false
			}
			continue
		}
		if v != b.Exact {
			return false
		}
	}
	return true
}

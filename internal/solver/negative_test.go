package solver

import (
	"fmt"
	"testing"

	"floodguard/internal/appir"
	"floodguard/internal/netpkt"
)

// The negative pass of Concretize is where representability limits bite:
// a ≠ on a bound field filters, on an unbound or prefix-bound field it
// penalises, and stacked negations can contradict each other outright.
func TestConcretizeNegativeEdgeCases(t *testing.T) {
	ipA := appir.IPValue(netpkt.MustIPv4("10.0.0.1"))
	ipB := appir.IPValue(netpkt.MustIPv4("10.0.0.2"))
	macA := appir.MACValue(netpkt.MustMAC("00:00:00:00:00:0a"))
	macB := appir.MACValue(netpkt.MustMAC("00:00:00:00:00:0b"))

	newSt := func() *appir.State {
		st := appir.NewState()
		st.Learn("hosts", macA, appir.U16Value(1))
		st.Learn("hosts", macB, appir.U16Value(2))
		st.AddPrefix("nets", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
		st.SetScalar("vip", ipA)
		return st
	}

	tests := []struct {
		name string
		give []appir.Cond
		// wantCount < 0 means "expect nil (unreachable)".
		wantCount   int
		wantPenalty int // penalty of every surviving assignment
		check       func(t *testing.T, asgs []Assignment)
	}{
		{
			name: "neq filters the excluded table entry",
			give: []appir.Cond{
				{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true},
				{Expr: appir.FieldEq(appir.FEthSrc, macA), Want: false},
			},
			wantCount: 1,
			check: func(t *testing.T, asgs []Assignment) {
				if asgs[0].Field(appir.FEthSrc).Exact != macB {
					t.Errorf("survivor = %v, want %v", asgs[0].Field(appir.FEthSrc), macB)
				}
			},
		},
		{
			name: "contradictory negations exclude every entry",
			give: []appir.Cond{
				{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true},
				{Expr: appir.FieldEq(appir.FEthSrc, macA), Want: false},
				{Expr: appir.FieldEq(appir.FEthSrc, macB), Want: false},
			},
			wantCount: -1,
		},
		{
			name: "eq then neq of the same value is unreachable",
			give: []appir.Cond{
				{Expr: appir.FieldEq(appir.FNwSrc, ipA), Want: true},
				{Expr: appir.FieldEqScalar(appir.FNwSrc, "vip"), Want: false},
			},
			wantCount: -1,
		},
		{
			name: "neq on unbound field penalises and wildcards",
			give: []appir.Cond{
				{Expr: appir.FieldEq(appir.FNwSrc, ipA), Want: true},
				{Expr: appir.FieldEq(appir.FNwDst, ipB), Want: false},
			},
			wantCount:   1,
			wantPenalty: 1,
			check: func(t *testing.T, asgs []Assignment) {
				if bound := asgs[0].Bound(appir.FNwDst); bound {
					t.Error("nw_dst should stay wildcarded under an unrepresentable neq")
				}
			},
		},
		{
			name: "neq against a prefix binding penalises, not drops",
			give: []appir.Cond{
				{Expr: appir.FieldInPrefixes(appir.FNwSrc, "nets"), Want: true},
				{Expr: appir.FieldEq(appir.FNwSrc, ipA), Want: false},
			},
			wantCount:   1,
			wantPenalty: 1,
			check: func(t *testing.T, asgs []Assignment) {
				b := asgs[0].Field(appir.FNwSrc)
				if !b.IsPrefix || b.PrefixLen != 8 {
					t.Errorf("prefix binding lost: %v", b)
				}
			},
		},
		{
			name: "prefix-vs-exact conflict: not-in-prefixes drops covered exact",
			give: []appir.Cond{
				{Expr: appir.FieldEq(appir.FNwSrc, ipA), Want: true},
				{Expr: appir.FieldInPrefixes(appir.FNwSrc, "nets"), Want: false},
			},
			wantCount: -1, // 10.0.0.1 ∈ 10.0.0.0/8, so the path is unreachable
		},
		{
			name: "prefix-vs-exact conflict: exact outside the prefixes survives",
			give: []appir.Cond{
				{Expr: appir.FieldEq(appir.FNwSrc, appir.IPValue(netpkt.MustIPv4("192.168.0.1"))), Want: true},
				{Expr: appir.FieldInPrefixes(appir.FNwSrc, "nets"), Want: false},
			},
			wantCount:   1,
			wantPenalty: 0,
		},
		{
			name: "not-in-table on bound field drops members only",
			give: []appir.Cond{
				{Expr: appir.FieldEq(appir.FEthSrc, macA), Want: true},
				{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: false},
			},
			wantCount: -1,
		},
		{
			name: "not-highbit binds the low half as a prefix",
			give: []appir.Cond{
				{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: false},
			},
			wantCount: 1,
			check: func(t *testing.T, asgs []Assignment) {
				b := asgs[0].Field(appir.FNwSrc)
				if !b.IsPrefix || b.PrefixLen != 1 || b.Prefix != 0 {
					t.Errorf("not-highbit binding = %v, want 0.0.0.0/1", b)
				}
			},
		},
		{
			name: "highbit then not-highbit is unreachable",
			give: []appir.Cond{
				{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: true},
				{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwSrc}}, Want: false},
			},
			wantCount: -1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			asgs := Concretize(tt.give, newSt())
			if tt.wantCount < 0 {
				if asgs != nil {
					t.Fatalf("Concretize = %v, want nil", asgs)
				}
				return
			}
			if len(asgs) != tt.wantCount {
				t.Fatalf("assignments = %d, want %d (%v)", len(asgs), tt.wantCount, asgs)
			}
			for _, a := range asgs {
				if a.Penalty != tt.wantPenalty {
					t.Errorf("penalty = %d, want %d", a.Penalty, tt.wantPenalty)
				}
			}
			if tt.check != nil {
				tt.check(t, asgs)
			}
		})
	}
}

// Results handed out by ConcretizeArena must stay intact after the arena
// is reused — the aliasing hazard the fresh-map copy-out exists to
// prevent.
func TestConcretizeArenaResultsDoNotAlias(t *testing.T) {
	st := appir.NewState()
	for i := 0; i < 8; i++ {
		st.Learn("hosts",
			appir.MACValue(netpkt.MAC{0, 0, 0, 0, 0, byte(i + 1)}),
			appir.U16Value(uint16(i+1)))
	}
	conds := []appir.Cond{{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true}}

	ar := NewArena()
	first := ConcretizeArena(conds, st, ar)
	if len(first) != 8 {
		t.Fatalf("assignments = %d, want 8", len(first))
	}
	snapshot := make([]appir.Value, len(first))
	for i, a := range first {
		snapshot[i] = a.Field(appir.FEthSrc).Exact
	}

	// Hammer the arena with different conditions; first must not move.
	for i := 0; i < 16; i++ {
		other := []appir.Cond{
			{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true},
			{Expr: appir.FieldEq(appir.FEthType, appir.U16Value(netpkt.EtherTypeIPv4)), Want: true},
		}
		ConcretizeArena(other, st, ar)
	}
	for i, a := range first {
		if got := a.Field(appir.FEthSrc).Exact; got != snapshot[i] {
			t.Fatalf("assignment %d mutated by arena reuse: %v != %v", i, got, snapshot[i])
		}
		if a.Len() != 1 {
			t.Fatalf("assignment %d gained fields: %v", i, a)
		}
	}
}

// Arena-backed concretization must agree exactly with the pooled entry
// point across a spread of conditions (same assignments, same order).
func TestConcretizeArenaMatchesDefault(t *testing.T) {
	st := appir.NewState()
	for i := 0; i < 16; i++ {
		st.Learn("hosts",
			appir.MACValue(netpkt.MAC{0, 0, 0, 0, 0, byte(i + 1)}),
			appir.U16Value(uint16(i%4+1)))
		st.AddPrefix("nets",
			appir.IPValue(netpkt.IPv4(uint32(10<<24|i<<16))), 16,
			appir.U16Value(uint16(i+1)))
	}
	st.SetScalar("vip", appir.IPValue(netpkt.MustIPv4("10.0.0.9")))

	cases := [][]appir.Cond{
		{{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true}},
		{
			{Expr: appir.FieldIn(appir.FEthSrc, "hosts"), Want: true},
			{Expr: appir.FieldInPrefixes(appir.FNwDst, "nets"), Want: true},
			{Expr: appir.FieldEqScalar(appir.FNwSrc, "vip"), Want: false},
		},
		{
			{Expr: appir.FieldInPrefixes(appir.FNwSrc, "nets"), Want: true},
			{Expr: appir.HighBit{A: appir.FieldRef{F: appir.FNwDst}}, Want: false},
		},
	}
	ar := NewArena()
	for i, conds := range cases {
		want := Concretize(conds, st)
		got := ConcretizeArena(conds, st, ar)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("case %d: arena result diverges:\n got %v\nwant %v", i, got, want)
		}
	}
}

// Command fgcachebox runs FloodGuard's data plane cache as a standalone
// service, the deployment shape of the paper's prototype (a separate
// server machine between the data and control planes).
//
// It dials the migration agent's dpcproto endpoint, listens for migrated
// frames from switch-side shims, and replays them under the agent's rate
// control:
//
//	fgcachebox -agent 10.0.0.1:6653 -ingest :7654 -queue 4096 -rate 50
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"floodguard/internal/cachebox"
	"floodguard/internal/dpcache"
	"floodguard/internal/telemetry"
)

func main() {
	agent := flag.String("agent", "127.0.0.1:6653", "migration agent dpcproto address")
	ingest := flag.String("ingest", ":7654", "listen address for migrated frames")
	queue := flag.Int("queue", 4096, "per-protocol queue capacity (packets)")
	rate := flag.Float64("rate", 50, "initial replay rate (packets/second)")
	stats := flag.Duration("stats", time.Second, "health report interval")
	metrics := flag.String("metrics", "", "serve live telemetry on this address (/metrics, /metrics.json, /debug/pprof)")
	flag.Parse()

	if err := run(*agent, *ingest, *queue, *rate, *stats, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "fgcachebox:", err)
		os.Exit(1)
	}
}

func run(agent, ingest string, queue int, rate float64, statsEvery time.Duration, metricsAddr string) error {
	box, addr, err := cachebox.Start(cachebox.Config{
		AgentAddr:  agent,
		IngestAddr: ingest,
		Cache: dpcache.Config{
			QueueCapacity:   queue,
			InitialRatePPS:  rate,
			ProcessingDelay: 100 * time.Microsecond,
		},
		StatsInterval: statsEvery,
	})
	if err != nil {
		return err
	}
	defer box.Close()
	fmt.Printf("fgcachebox: ingesting on %v, replaying to %s\n", addr, agent)
	if metricsAddr != "" {
		reg := telemetry.NewRegistry()
		box.Instrument(reg, 64)
		ln, err := telemetry.Serve(metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Printf("fgcachebox: telemetry on http://%v/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nfgcachebox: shutting down")
			return nil
		case <-tick.C:
			st := box.Stats()
			fmt.Printf("fgcachebox: in=%d out=%d dropped=%d backlog=%d\n",
				st.Enqueued, st.Emitted, st.Dropped, st.Backlog)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: floodguard
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMicroflowHit-8         	27690786	        43.21 ns/op	       0 B/op	       0 allocs/op
BenchmarkDeriveRules/paths-1000/workers-1-8   	     100	  10658591 ns/op	11454926 B/op	   42039 allocs/op
BenchmarkDeriveRulesMemo/warm/paths-1000      	     100	    535523 ns/op	  582560 B/op	    2353 allocs/op
BenchmarkMicroflowHitRetentionUnderChurn/churn-every-4-8 	  100000	     61960 ns/op	         1.000 hitrate	    6959 B/op	     403 allocs/op
--- SKIP: BenchmarkDeriveRulesSpeedup
PASS
ok  	floodguard	5.818s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	// Names are verbatim: the -8 procs suffix stays, and a numeric
	// sub-benchmark segment like paths-1000 is never mistaken for one.
	if benches[0].Name != "BenchmarkMicroflowHit-8" {
		t.Errorf("name not verbatim: %q", benches[0].Name)
	}
	if benches[0].NsPerOp != 43.21 || benches[0].AllocsPerOp != 0 {
		t.Errorf("MicroflowHit parsed as %+v", benches[0])
	}
	if benches[1].Name != "BenchmarkDeriveRules/paths-1000/workers-1-8" {
		t.Errorf("sub-benchmark name: %q", benches[1].Name)
	}
	if benches[2].Name != "BenchmarkDeriveRulesMemo/warm/paths-1000" {
		t.Errorf("suffix-free name mangled: %q", benches[2].Name)
	}
	if got := benches[3].Metrics["hitrate"]; got != 1.0 {
		t.Errorf("hitrate = %v, want 1.0", got)
	}
}

func TestGates(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var gates gateList
	for _, s := range []string{
		"BenchmarkMicroflowHit(-|$):allocs_per_op<=0",
		"BenchmarkDeriveRules/paths-1000/workers-1:ns_per_op<=60000000",
		"churn-every-4:hitrate>=0.9",
	} {
		if err := gates.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	if failures := checkGates(benches, gates); len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}

	var bad gateList
	if err := bad.Set("BenchmarkDeriveRules/paths-1000/workers-1:ns_per_op<=1000"); err != nil {
		t.Fatal(err)
	}
	if failures := checkGates(benches, bad); len(failures) != 1 {
		t.Errorf("tight gate produced %d failures, want 1", len(failures))
	}

	var unmatched gateList
	if err := unmatched.Set("BenchmarkRenamedAway:ns_per_op<=1"); err != nil {
		t.Fatal(err)
	}
	if failures := checkGates(benches, unmatched); len(failures) != 1 {
		t.Errorf("unmatched gate produced %d failures, want 1 (must not silently pass)", len(failures))
	}
}

func TestGateSyntaxErrors(t *testing.T) {
	var g gateList
	for _, s := range []string{"nocolon", "a:b", "a:b<=x", "a(:ns_per_op<=1"} {
		if err := g.Set(s); err == nil {
			t.Errorf("gate %q accepted", s)
		}
	}
}

// The anchored MicroflowHit gate must not bleed onto the churn
// benchmark, whose allocs come from the Apply churn itself.
func TestGateAnchoring(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var g gateList
	if err := g.Set("BenchmarkMicroflowHit:allocs_per_op<=0"); err != nil {
		t.Fatal(err)
	}
	if failures := checkGates(benches, g); len(failures) != 1 {
		t.Fatalf("unanchored gate failures = %v, want the churn bench to trip it", failures)
	}
	var anchored gateList
	if err := anchored.Set("BenchmarkMicroflowHit(-|$):allocs_per_op<=0"); err != nil {
		t.Fatal(err)
	}
	if failures := checkGates(benches, anchored); len(failures) != 0 {
		t.Errorf("anchored gate failures = %v, want none", failures)
	}
}

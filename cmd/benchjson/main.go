// Command benchjson converts `go test -bench` text (stdin or -in) into
// a machine-readable JSON report and enforces regression gates on the
// parsed numbers. CI pipes the PR's benchmark families through it and
// uploads the JSON as the build's performance artifact:
//
//	go test -bench Foo -benchmem -run '^$' ./... | benchjson -out BENCH.json \
//	    -gate 'BenchmarkFoo:ns_per_op<=1000000'
//
// A gate is regexp-pattern:metric<=bound (or >=); anchor with (-|$) to
// keep BenchmarkFoo from also matching BenchmarkFooBar. Metrics are
// ns_per_op, bytes_per_op, allocs_per_op, or any custom unit the
// benchmark reported (speedup, hitrate, ...). A gate whose pattern
// matches no parsed benchmark fails the run — a silently-renamed
// benchmark must not turn its gate into a no-op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

type gate struct {
	pattern *regexp.Regexp
	metric  string
	max     bool // true: value must be <= bound; false: >= bound
	bound   float64
}

type gateList []gate

func (g *gateList) String() string { return fmt.Sprint(*g) }

func (g *gateList) Set(s string) error {
	colon := strings.LastIndex(s, ":")
	if colon < 0 {
		return fmt.Errorf("gate %q: want pattern:metric<=bound", s)
	}
	pattern, expr := s[:colon], s[colon+1:]
	var op string
	var max bool
	switch {
	case strings.Contains(expr, "<="):
		op, max = "<=", true
	case strings.Contains(expr, ">="):
		op, max = ">=", false
	default:
		return fmt.Errorf("gate %q: no <= or >= in %q", s, expr)
	}
	parts := strings.SplitN(expr, op, 2)
	bound, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return fmt.Errorf("gate %q: bad bound: %v", s, err)
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("gate %q: bad pattern: %v", s, err)
	}
	*g = append(*g, gate{
		pattern: re,
		metric:  strings.TrimSpace(parts[0]),
		max:     max,
		bound:   bound,
	})
	return nil
}

func main() {
	var gates gateList
	in := flag.String("in", "", "read benchmark text from this file instead of stdin")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Var(&gates, "gate", "regression gate pattern:metric<=bound (repeatable)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	benches, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	rep := Report{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	if failures := checkGates(benches, gates); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: GATE FAILED:", f)
		}
		os.Exit(1)
	}
	for _, g := range gates {
		fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s %s %s %g\n",
			g.pattern, g.metric, gateOp(g), g.bound)
	}
}

func gateOp(g gate) string {
	if g.max {
		return "<="
	}
	return ">="
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. A line looks like:
//
//	BenchmarkName/sub-8  100  12345 ns/op  42 B/op  7 allocs/op  1.5 hitrate
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- SKIP" chatter
		}
		// Names are kept verbatim, including any -N GOMAXPROCS suffix:
		// stripping it is ambiguous against numeric sub-benchmark path
		// segments like paths-1000 (go omits the suffix entirely when
		// GOMAXPROCS is 1). Gates match by substring, so the suffix is
		// harmless.
		b := Benchmark{Name: fields[0], Iterations: iters}
		// The rest is value-unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[strings.TrimSuffix(fields[i+1], "/op")] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func (b *Benchmark) metric(name string) (float64, bool) {
	switch name {
	case "ns_per_op":
		return b.NsPerOp, true
	case "bytes_per_op":
		return b.BytesPerOp, true
	case "allocs_per_op":
		return b.AllocsPerOp, true
	}
	v, ok := b.Metrics[name]
	return v, ok
}

func checkGates(benches []Benchmark, gates []gate) []string {
	var failures []string
	for _, g := range gates {
		matched := false
		for i := range benches {
			b := &benches[i]
			if !g.pattern.MatchString(b.Name) {
				continue
			}
			v, ok := b.metric(g.metric)
			if !ok {
				continue
			}
			matched = true
			if g.max && v > g.bound {
				failures = append(failures, fmt.Sprintf("%s: %s = %g, want <= %g",
					b.Name, g.metric, v, g.bound))
			}
			if !g.max && v < g.bound {
				failures = append(failures, fmt.Sprintf("%s: %s = %g, want >= %g",
					b.Name, g.metric, v, g.bound))
			}
		}
		if !matched {
			failures = append(failures, fmt.Sprintf(
				"gate %s:%s matched no benchmark (renamed or not run?)", g.pattern, g.metric))
		}
	}
	return failures
}

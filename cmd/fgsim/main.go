// Command fgsim regenerates the paper's evaluation artefacts: every
// figure and table of §V plus the §II baseline. Each experiment runs the
// Figure 9 topology on the deterministic discrete-event engine and prints
// the series the paper reports.
//
// Usage:
//
//	fgsim <experiment> [flags]
//
// Experiments: sec2-baseline, fig10, fig11, fig12, fig13, tab3, tab4,
// compare, chaos, attrib, sweep, pps, soak, synflood, all
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"floodguard/internal/experiments"
	"floodguard/internal/soak"
	"floodguard/internal/telemetry"
)

var (
	asCSV       bool
	windowsCSV  string
	journalPath string
	metricsReg  *telemetry.Registry
)

func main() {
	trials := flag.Int("trials", 5, "probe flows for tab4")
	iters := flag.Int("iters", 50, "derivation repetitions for fig13")
	seed := flag.Int64("seed", 0xF100D, "flap schedule seed for chaos and the soak generators")
	flaps := flag.Int("flaps", 8, "sideband outages for chaos")
	shards := flag.Int("shards", 1, "parallel shards for sweep (merged output is shard-count invariant) and pps; >1 also applies to soak")
	flowModRate := flag.Float64("flowmod-rate", 0, "rule-churn flow_mods per second applied during pps (0 = none)")
	duration := flag.Duration("duration", 5*time.Second, "simulated soak length")
	flows := flag.Int("flows", 100_000, "benign distinct-flow population for soak")
	profile := flag.String("profile", "all", "soak attacker profile: ramp, pulse, rotate, slow, or all")
	scenario := flag.String("scenario", "", "extra soak scenario terms (key=value,... ; overrides the soak flags)")
	flag.BoolVar(&asCSV, "csv", false, "emit machine-readable CSV (fig10/fig11/fig12/fig13/sec2-baseline/compare/chaos/attrib/sweep/soak)")
	metricsAddr := flag.String("metrics", "", "serve live telemetry on this address (/metrics, /metrics.json, /debug/pprof); held open after the run until interrupted")
	metricsCSV := flag.String("metrics-csv", "", "append periodic registry dumps (elapsed_ms,name,value rows) to this file")
	flag.StringVar(&windowsCSV, "windows-csv", "", "write the chaos run's per-window telemetry rows to this file")
	flag.StringVar(&journalPath, "journal", "", "arm the soak decision journal and write the flight-recorder JSONL dump to this file (inspect with: fganalyze journal)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	var reg *telemetry.Registry
	hold := false
	if *metricsAddr != "" || *metricsCSV != "" {
		reg = telemetry.NewRegistry()
		experiments.SetRegistry(reg)
		metricsReg = reg
	}
	if *metricsAddr != "" {
		ln, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fgsim: telemetry on http://%v/metrics\n", ln.Addr())
		hold = true
	}
	if *metricsCSV != "" {
		f, err := os.Create(*metricsCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		start := time.Now()
		stop := make(chan struct{})
		defer func() {
			close(stop)
			_ = reg.DumpCSV(f, time.Since(start)) // final dump after the run
		}()
		go func() {
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = reg.DumpCSV(f, time.Since(start))
				}
			}
		}()
	}

	if err := run(flag.Arg(0), *trials, *iters, *seed, *flaps, *shards,
		*duration, *flows, *profile, *scenario, *flowModRate); err != nil {
		fmt.Fprintln(os.Stderr, "fgsim:", err)
		os.Exit(1)
	}
	if hold {
		fmt.Fprintln(os.Stderr, "fgsim: run complete; telemetry endpoint still live (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fgsim [flags] <experiment>

experiments:
  sec2-baseline   §II: software switch collapse under table-miss UDP flood
  fig10           bandwidth vs attack rate, software environment
  fig11           bandwidth vs attack rate, hardware environment
  fig12           per-app CPU utilization timeline under attack (with FloodGuard)
  fig13           proactive flow rule generation overhead per application
  tab3            state-sensitive variables per application
  tab4            average first-packet delay (OpenFlow vs FloodGuard)
  compare         FloodGuard vs AvantGuard vs no defense, per flood protocol
  chaos           seeded sideband flaps mid-Defense: degraded drops and recovery
  attrib          collateral damage to benign traffic: blanket vs selective migration
  sweep           multi-seed bandwidth sweep sharded across -shards workers
  pps             sustained-pps macro benchmark: sharded engine vs channel baseline
  soak            adversarial soak: zipfian flows + adaptive attackers + chaos,
                  invariants asserted every window (-duration/-flows/-profile/-scenario)
  synflood        TCP SYN-flood sweep: benign handshake completion and controller
                  packet_ins with the SYN-proxy tier off vs on at each attack rate
  all             run everything in paper order

flags:`)
	flag.PrintDefaults()
}

func run(name string, trials, iters int, seed int64, flaps, shards int,
	duration time.Duration, flows int, profile, scenario string, flowModRate float64) error {
	switch name {
	case "sec2-baseline":
		return sec2()
	case "fig10":
		return fig10()
	case "fig11":
		return fig11()
	case "fig12":
		return fig12()
	case "fig13":
		return fig13(iters)
	case "tab3":
		return tab3()
	case "tab4":
		return tab4(trials)
	case "compare":
		return compare()
	case "chaos":
		return chaos(seed, flaps)
	case "attrib":
		return attribExp(seed)
	case "sweep":
		return sweep(shards)
	case "pps":
		return pps(seed, shards, flowModRate)
	case "soak":
		return soakRun(seed, shards, duration, flows, profile, scenario)
	case "synflood":
		return synflood(seed)
	case "all":
		for _, fn := range []func() error{
			sec2, fig10, fig11, fig12,
			func() error { return fig13(iters) },
			tab3,
			func() error { return tab4(trials) },
			compare,
			func() error { return chaos(seed, flaps) },
		} {
			if err := fn(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (try: fgsim -h)", name)
	}
}

func sec2() error {
	pts, err := experiments.RunSec2Baseline()
	if err != nil {
		return err
	}
	if asCSV {
		return experiments.WriteCSVCollapse(os.Stdout, pts)
	}
	experiments.PrintCollapse(os.Stdout, pts)
	return nil
}

func fig10() error {
	r, err := experiments.RunFig10()
	if err != nil {
		return err
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

func fig11() error {
	r, err := experiments.RunFig11()
	if err != nil {
		return err
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

func fig12() error {
	r, err := experiments.RunFig12()
	if err != nil {
		return err
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

func fig13(iters int) error {
	costs, err := experiments.RunFig13(experiments.DefaultFig13State(), iters)
	if err != nil {
		return err
	}
	if asCSV {
		return experiments.WriteCSVFig13(os.Stdout, costs)
	}
	experiments.PrintFig13(os.Stdout, costs)
	return nil
}

func tab3() error {
	rows, err := experiments.RunTable3()
	if err != nil {
		return err
	}
	experiments.PrintTable3(os.Stdout, rows)
	return nil
}

func compare() error {
	cells, err := experiments.RunComparison(300)
	if err != nil {
		return err
	}
	if asCSV {
		return experiments.WriteCSVComparison(os.Stdout, cells)
	}
	experiments.PrintComparison(os.Stdout, cells, 300)
	return nil
}

func tab4(trials int) error {
	r, err := experiments.RunTab4(trials)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

func attribExp(seed int64) error {
	r, err := experiments.RunAttrib(seed, nil)
	if err != nil {
		return err
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

func sweep(shards int) error {
	cfg := experiments.DefaultSweep()
	cfg.Shards = shards
	r, err := experiments.RunSweep(cfg)
	if err != nil {
		return err
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

// pps runs the sustained-pps macro benchmark across the three
// pipelines: the channel-hop baseline, the run-to-completion engine
// over the legacy writer-locked table, and the shard-partitioned
// engine. -flowmod-rate adds rule churn while traffic runs — the
// scenario separating the locked and partitioned arms.
func pps(seed int64, shards int, flowModRate float64) error {
	var results []*experiments.PPSResult
	for _, mode := range []experiments.PPSMode{experiments.PPSChannels, experiments.PPSLocked, experiments.PPSSharded} {
		r, err := experiments.RunPPS(experiments.PPSConfig{
			Mode:        mode,
			Shards:      shards,
			Seed:        seed,
			FlowModRate: flowModRate,
		})
		if err != nil {
			return err
		}
		results = append(results, r)
		if !asCSV {
			r.Print(os.Stdout)
		}
	}
	if asCSV {
		return experiments.WritePPSCSV(os.Stdout, results)
	}
	sharded := results[len(results)-1]
	fmt.Fprintf(os.Stdout, "sharded/channels speedup: %.2fx\n", sharded.SustainedPPS/results[0].SustainedPPS)
	fmt.Fprintf(os.Stdout, "sharded/locked   speedup: %.2fx\n", sharded.SustainedPPS/results[1].SustainedPPS)
	return nil
}

// soakRun assembles the scenario string from the dedicated flags (the
// -scenario terms come last, so they win) and hands it to the same
// parser the fuzz tier hammers; a run with invariant violations exits
// nonzero so CI smoke catches regressions.
func soakRun(seed int64, shards int, duration time.Duration, flows int, profile, scenario string) error {
	terms := []string{
		fmt.Sprintf("seed=%d", seed),
		fmt.Sprintf("duration=%v", duration),
		fmt.Sprintf("flows=%d", flows),
		fmt.Sprintf("profile=%s", profile),
	}
	if shards > 1 {
		terms = append(terms, fmt.Sprintf("shards=%d", shards))
	}
	if scenario != "" {
		terms = append(terms, scenario)
	}
	cfg, err := soak.ParseScenario(strings.Join(terms, ","))
	if err != nil {
		return err
	}
	if journalPath != "" {
		cfg.Journal = true
		cfg.Registry = metricsReg
	}
	res, err := soak.Run(cfg)
	if err != nil {
		return err
	}
	if journalPath != "" {
		if err := os.WriteFile(journalPath, res.JournalDump, 0o644); err != nil {
			return fmt.Errorf("write journal dump: %w", err)
		}
		fmt.Fprintf(os.Stderr, "fgsim: journal dump (%d bytes) written to %s\n", len(res.JournalDump), journalPath)
	}
	if asCSV {
		if err := experiments.WriteSoakCSV(os.Stdout, res.Windows); err != nil {
			return err
		}
		res.Print(os.Stderr)
	} else {
		res.Print(os.Stdout)
	}
	if n := len(res.Violations); n > 0 {
		for i, v := range res.Violations {
			if i >= 10 {
				fmt.Fprintf(os.Stderr, "fgsim: ... and %d more violations\n", n-i)
				break
			}
			fmt.Fprintf(os.Stderr, "fgsim: invariant violation: %s\n", v)
		}
		return fmt.Errorf("soak: %d invariant violations", n)
	}
	return nil
}

// synflood runs the TCP tier's off-vs-on sweep; the -seed flag keys
// every cell, so two runs with the same seed emit byte-identical CSV
// (the CI determinism smoke compares the bytes).
func synflood(seed int64) error {
	r, err := experiments.RunSynFlood(seed)
	if err != nil {
		return err
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

func chaos(seed int64, flaps int) error {
	r, err := experiments.RunChaos(seed, flaps)
	if err != nil {
		return err
	}
	if windowsCSV != "" {
		f, err := os.Create(windowsCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteCSVWindows(f, r.Windows); err != nil {
			return err
		}
	}
	if asCSV {
		return r.WriteCSV(os.Stdout)
	}
	r.Print(os.Stdout)
	return nil
}

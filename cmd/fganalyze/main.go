// Command fganalyze runs the proactive flow rule analyzer over the
// bundled controller applications and prints, per application:
//
//   - the paths found by offline symbolic execution (Algorithm 1) with
//     their path conditions and terminal decisions,
//   - the state-sensitive variables the handler reads (Table III), and
//   - the proactive flow rules derived from a sample state (Algorithm 2).
//
// Usage:
//
//	fganalyze [app ...]
//	fganalyze journal [-port N] [-kind k1,k2] [-windows a:b] [-explain port=N] <dump.jsonl>
//
// With no arguments every bundled application is analyzed. The journal
// subcommand queries a flight-recorder dump produced by
// `fgsim -journal <path> soak`: filter the total-ordered event
// timeline, or reconstruct one port's evidence chain with -explain.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/journal"
	"floodguard/internal/netpkt"
	"floodguard/internal/symexec"
)

type subject struct {
	prog  *appir.Program
	state *appir.State
}

func buildSubjects() map[string]subject {
	out := make(map[string]subject)
	add := func(prog *appir.Program, st *appir.State) { out[prog.Name] = subject{prog, st} }

	prog, st := apps.L2Learning()
	st.Learn("macToPort", appir.MACValue(netpkt.MustMAC("00:00:00:00:00:0a")), appir.U16Value(1))
	st.Learn("macToPort", appir.MACValue(netpkt.MustMAC("00:00:00:00:00:0b")), appir.U16Value(2))
	add(prog, st)

	add(apps.ARPHub())
	add(apps.IPBalancer(apps.DefaultIPBalancerConfig()))

	prog, st = apps.L3Learning()
	st.Learn("ipToPort", appir.IPValue(netpkt.MustIPv4("10.0.0.1")), appir.U16Value(1))
	st.Learn("ipToPort", appir.IPValue(netpkt.MustIPv4("10.0.0.2")), appir.U16Value(2))
	add(prog, st)

	prog, st = apps.OFFirewall()
	st.Learn("blockedTCPPorts", appir.U16Value(23), appir.BoolValue(true))
	st.AddPrefix("blockedSrcNets", appir.IPValue(netpkt.MustIPv4("203.0.113.0")), 24, appir.BoolValue(true))
	st.AddPrefix("routeTable", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(4))
	add(prog, st)

	prog, st = apps.MACBlocker()
	st.Learn("blockedMACs", appir.MACValue(netpkt.MustMAC("00:00:00:00:00:66")), appir.BoolValue(true))
	add(prog, st)

	prog, st = apps.Route()
	st.AddPrefix("routingTable", appir.IPValue(netpkt.MustIPv4("10.0.0.0")), 8, appir.U16Value(1))
	st.AddPrefix("routingTable", appir.IPValue(netpkt.MustIPv4("10.1.0.0")), 16, appir.U16Value(2))
	add(prog, st)
	return out
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fganalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "journal" {
		return runJournal(args[1:])
	}
	subjects := buildSubjects()
	names := args
	if len(names) == 0 {
		names = []string{"l2_learning", "arp_hub", "ip_balancer", "l3_learning", "of_firewall", "mac_blocker", "route"}
	}
	for _, name := range names {
		sub, ok := subjects[name]
		if !ok {
			return fmt.Errorf("unknown application %q", name)
		}
		if err := analyze(sub); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

// runJournal implements the journal subcommand: load a JSONL
// flight-recorder dump and either print the (filtered) total-ordered
// timeline or explain one port's evidence chain.
func runJournal(args []string) error {
	fs := flag.NewFlagSet("journal", flag.ContinueOnError)
	port := fs.Int("port", -1, "only events touching this port")
	kinds := fs.String("kind", "", "comma-separated kind filter (e.g. blame,heal,slo)")
	windows := fs.String("windows", "", "inclusive window range a:b")
	explain := fs.String("explain", "", "port=N: print the evidence chain for port N")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fganalyze journal [-port N] [-kind k1,k2] [-windows a:b] [-explain port=N] <dump.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("journal: want exactly one dump path (or - for stdin)")
	}

	var r io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	d, err := journal.ReadDump(r)
	if err != nil {
		return err
	}
	fmt.Printf("journal: seed=%#x shards=%d windows=%d trigger=%s dropped=%d events=%d violations=%d\n",
		d.Meta.Seed, d.Meta.Shards, d.Meta.Windows, d.Meta.Trigger, d.Meta.Dropped, len(d.Events), len(d.Violations))

	if *explain != "" {
		var p int
		if _, err := fmt.Sscanf(*explain, "port=%d", &p); err != nil || p < 0 || p > 0xFFFF {
			return fmt.Errorf("journal: bad -explain %q (want port=N)", *explain)
		}
		return journal.Explain(os.Stdout, d, uint16(p))
	}

	kindSet := make(map[journal.Kind]bool)
	if *kinds != "" {
		for _, s := range strings.Split(*kinds, ",") {
			k, ok := journal.ParseKind(strings.TrimSpace(s))
			if !ok {
				return fmt.Errorf("journal: unknown kind %q", s)
			}
			kindSet[k] = true
		}
	}
	lo, hi := 0, int(^uint(0)>>1)
	if *windows != "" {
		if _, err := fmt.Sscanf(*windows, "%d:%d", &lo, &hi); err != nil {
			return fmt.Errorf("journal: bad -windows %q (want a:b)", *windows)
		}
	}
	for _, ev := range d.Events {
		if *port >= 0 && int(ev.Port) != *port {
			continue
		}
		if len(kindSet) > 0 && !kindSet[ev.Kind] {
			continue
		}
		if int(ev.Window) < lo || int(ev.Window) > hi {
			continue
		}
		fmt.Println(journal.FormatEvent(ev))
	}
	for _, v := range d.Violations {
		if v.Window < lo || v.Window > hi {
			continue
		}
		fmt.Printf("w%-4d [violation] %s: %s\n", v.Window, v.Invariant, v.Detail)
	}
	return nil
}

func analyze(sub subject) error {
	fmt.Printf("=== %s ===\n", sub.prog.Name)

	paths, err := symexec.Explore(sub.prog)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 — %d path condition(s):\n", len(paths))
	for _, p := range paths {
		fmt.Printf("  %s\n", p.String())
	}

	vars := symexec.StateSensitiveVariables(paths)
	fmt.Printf("state-sensitive variables (Table III): ")
	if len(vars) == 0 {
		fmt.Println("(none — static policies only)")
	} else {
		for i, v := range vars {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(v)
			if decl, ok := sub.prog.GlobalByName(v); ok && decl.Description != "" {
				fmt.Printf(" [%s]", decl.Description)
			}
		}
		fmt.Println()
	}

	rules, err := symexec.DeriveRules(paths, sub.state)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2 — %d proactive flow rule(s) from the sample state:\n", len(rules))
	for _, r := range rules {
		fmt.Printf("  [path %d] %s\n", r.PathID, r.Rule.String())
	}
	return nil
}

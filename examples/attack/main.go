// Attack: the data-to-control plane saturation attack against an
// unprotected OpenFlow network (paper §II). A single attacker sprays
// spoofed table-miss packets; the switch buffer fills, packet_ins start
// carrying whole frames (amplification), the controller's work backlog
// grows without bound, and the datapath's usable bandwidth collapses.
package main

import (
	"fmt"
	"log"
	"time"

	"floodguard"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Saturation attack against an UNPROTECTED software switch (1.7 Gbps baseline)")
	fmt.Printf("%-12s %-14s %-12s %-14s %-14s\n",
		"attack(PPS)", "bandwidth", "buffer", "amplified", "ctl-backlog")

	for _, rate := range []float64{0, 100, 250, 500} {
		net := floodguard.NewNetwork()
		sw := net.AddSwitch(0x1, floodguard.SoftwareSwitch())
		if _, err := net.AddHost(sw, "alice", 1, "00:00:00:00:00:0a", "10.0.0.1"); err != nil {
			return err
		}
		if _, err := net.AddHost(sw, "bob", 2, "00:00:00:00:00:0b", "10.0.0.2"); err != nil {
			return err
		}
		mallory, err := net.AddHost(sw, "mallory", 3, "00:00:00:00:00:0c", "10.0.0.3")
		if err != nil {
			return err
		}
		// A deliberately loaded controller (as in a real deployment
		// handling many switches): 5 ms per packet_in.
		app := floodguard.L2Learning()
		app.CostPerEvent = 5 * time.Millisecond
		net.RegisterApp(app)
		net.Deploy()

		flood := net.NewFlooder(mallory, 7, floodguard.FloodUDP)
		if rate > 0 {
			flood.Start(rate)
		}
		net.Run(5 * time.Second)

		st := sw.Stats()
		share := sw.GoodputShare()
		fmt.Printf("%-12.0f %-14s %3d/%-8d %-14d %-14v\n",
			rate,
			fmt.Sprintf("%.2f Gbps", share*sw.Profile().DataRateBits/1e9),
			st.BufferUsed, st.BufferSlots,
			st.AmplifiedIns,
			net.Controller().Backlog().Round(time.Millisecond))
		net.Close()
	}

	fmt.Println("\nThe paper's §II observation: ~500 packets/second of table-miss UDP")
	fmt.Println("renders the software switch dysfunctional — no defense required beyond")
	fmt.Println("one host generating spoofed microflows.")
	return nil
}

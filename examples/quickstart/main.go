// Quickstart: bring up the paper's Figure 9 topology — one OpenFlow
// switch, a reactive controller running l2_learning, two benign clients
// and one attacker — enable FloodGuard, launch a UDP saturation attack,
// and watch the state machine walk Idle → Init → Defense → Finish → Idle
// while benign traffic keeps flowing.
package main

import (
	"fmt"
	"log"
	"time"

	"floodguard"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := floodguard.NewNetwork()
	sw := net.AddSwitch(0x1, floodguard.SoftwareSwitch())

	alice, err := net.AddHost(sw, "alice", 1, "00:00:00:00:00:0a", "10.0.0.1")
	if err != nil {
		return err
	}
	bob, err := net.AddHost(sw, "bob", 2, "00:00:00:00:00:0b", "10.0.0.2")
	if err != nil {
		return err
	}
	mallory, err := net.AddHost(sw, "mallory", 3, "00:00:00:00:00:0c", "10.0.0.3")
	if err != nil {
		return err
	}

	net.RegisterApp(floodguard.L2Learning())
	net.Deploy()
	defer net.Close()

	cfg := floodguard.DefaultConfig()
	// Keep the replay rate modest so the walkthrough output stays small.
	cfg.RateLimit.MaxPPS = 50
	guard, err := net.EnableFloodGuard(cfg)
	if err != nil {
		return err
	}

	// Let alice and bob introduce themselves so l2_learning knows both.
	fmt.Println("== warm up: benign hosts exchange traffic ==")
	for i := 0; i < 5; i++ {
		send(alice, bob, 1)
		net.Run(200 * time.Millisecond)
	}
	fmt.Printf("t=%-6v state=%-8v switch rules=%d  bob received=%d\n",
		net.Now().Round(time.Millisecond), guard.State(), sw.Table().Len(), bob.Received())

	// Attack.
	fmt.Println("\n== mallory floods 300 spoofed UDP packets/second ==")
	flood := net.NewFlooder(mallory, 42, floodguard.FloodUDP)
	flood.Start(300)
	for i := 0; i < 4; i++ {
		net.Run(500 * time.Millisecond)
		st := guard.Caches()[0].Stats()
		fmt.Printf("t=%-6v state=%-8v rules=%-3d cache{in=%d out=%d backlog=%d} replay=%.0f pps\n",
			net.Now().Round(time.Millisecond), guard.State(), sw.Table().Len(),
			st.Enqueued, st.Emitted, st.Backlog, guard.Caches()[0].Rate())
	}

	// Benign traffic still flows through the proactive rules.
	fmt.Println("\n== benign traffic during the attack ==")
	benign := 0
	bob.OnReceive = func(pkt floodguard.Packet) {
		if pkt.TpDst >= 7100 && pkt.TpDst < 7200 {
			benign++
		}
	}
	for i := 0; i < 20; i++ {
		alice.Send(floodguard.UDPPacket(alice, bob, uint16(5100+i), uint16(7100+i), 100))
	}
	net.Run(time.Second)
	bob.OnReceive = nil
	fmt.Printf("bob received %d of 20 benign packets while flooded\n", benign)

	// End of attack: Finish, drain, Idle.
	fmt.Println("\n== attack stops; the cache drains ==")
	flood.Stop()
	for guard.State() != floodguard.StateIdle && net.Now() < 90*time.Second {
		net.Run(2 * time.Second)
	}
	fmt.Printf("t=%-6v state=%-8v\n", net.Now().Round(time.Millisecond), guard.State())

	fmt.Println("\n== state machine history ==")
	for _, tr := range guard.Transitions() {
		fmt.Printf("  %v -> %-8v at t=%v (%s)\n", tr.From, tr.To,
			tr.At.Sub(tr.At.Truncate(24*time.Hour)).Round(time.Millisecond), tr.Reason)
	}
	return nil
}

func send(from, to *floodguard.Host, n int) {
	for i := 0; i < n; i++ {
		from.Send(floodguard.UDPPacket(from, to, uint16(5000+i), uint16(7000+i), 100))
		to.Send(floodguard.UDPPacket(to, from, uint16(7000+i), uint16(5000+i), 100))
	}
}

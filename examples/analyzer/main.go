// Analyzer: a walkthrough of the proactive flow rule analyzer on the
// paper's running example, l2_learning (Figure 5).
//
// Algorithm 1 (offline) symbolically executes the packet_in handler with
// the input fields AND the state-sensitive global macToPort symbolized,
// yielding the three path conditions of Figure 5. Algorithm 2 (runtime)
// substitutes the live macToPort contents into those conditions and
// converts the install-terminated path into one proactive flow rule per
// learned MAC — "the number of proactive flow rules is based on how many
// MAC-port pairs have been learned" (§IV.B).
package main

import (
	"fmt"
	"log"
	"time"

	"floodguard"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app := floodguard.L2Learning()

	fmt.Println("== Algorithm 1: offline symbolic execution of l2_learning ==")
	paths, err := floodguard.Analyze(app.Prog)
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Printf("  %s\n", p.String())
	}

	fmt.Println("\n== state-sensitive variables (Table III row) ==")
	for _, v := range floodguard.StateSensitiveVariables(paths) {
		fmt.Printf("  %s\n", v)
	}

	fmt.Println("\n== Algorithm 2: derive rules as the network state evolves ==")
	// Drive the real system so macToPort grows organically: each newly
	// heard host adds one learned MAC, hence one more derivable rule.
	net := floodguard.NewNetwork()
	sw := net.AddSwitch(0x1, floodguard.SoftwareSwitch())
	net.RegisterApp(app)

	hosts := []struct{ name, mac, ip string }{
		{"h1", "00:00:00:00:00:01", "10.0.0.1"},
		{"h2", "00:00:00:00:00:02", "10.0.0.2"},
		{"h3", "00:00:00:00:00:03", "10.0.0.3"},
	}
	var hs []*floodguard.Host
	for i, h := range hosts {
		host, err := net.AddHost(sw, h.name, uint16(i+1), h.mac, h.ip)
		if err != nil {
			return err
		}
		hs = append(hs, host)
	}
	net.Deploy()
	defer net.Close()
	guard, err := net.EnableFloodGuard(floodguard.DefaultConfig())
	if err != nil {
		return err
	}
	_ = guard

	for i, h := range hs {
		// Each host announces itself (a packet to an unknown MAC floods
		// and teaches l2_learning the source).
		pkt := floodguard.UDPPacket(h, hs[(i+1)%len(hs)], 1000, 2000, 64)
		dst, _ := floodguard.ParseMAC("00:00:00:00:00:ff")
		pkt.EthDst = dst
		h.Send(pkt)
		net.Run(500 * time.Millisecond)

		fmt.Printf("\nafter %s speaks (macToPort has %d entries):\n", hosts[i].name, i+1)
		rules, err := deriveNow(app)
		if err != nil {
			return err
		}
		for _, r := range rules {
			fmt.Printf("  %s\n", r)
		}
	}
	return nil
}

// deriveNow runs Algorithm 2 against the app's live state and renders the
// derived rules.
func deriveNow(app *floodguard.App) ([]string, error) {
	paths, err := floodguard.Analyze(app.Prog)
	if err != nil {
		return nil, err
	}
	rules, err := floodguard.DeriveProactiveRules(paths, app.State)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Rule.String()
	}
	return out, nil
}

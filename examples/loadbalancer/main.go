// Loadbalancer: the paper's Table I ip_balancer under attack. Traffic to
// the public VIP is split on the source address's highest-order bit and
// rewritten to one of two server replicas. FloodGuard's analyzer derives
// the two coarse proactive rules (nw_src=128.0.0.0/1 and 0.0.0.0/1) so
// the balancing policy keeps working during the flood; when the operator
// repartitions the replicas mid-attack (the paper's §IV.D dynamics
// example, Figure 8), the application tracker notices the state change
// and refreshes the installed rules.
package main

import (
	"fmt"
	"log"
	"time"

	"floodguard"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := floodguard.NewNetwork()
	sw := net.AddSwitch(0x1, floodguard.SoftwareSwitch())

	// Two server replicas and one client per half of the address space.
	if _, err := net.AddHost(sw, "replica-hi", 2, "00:00:00:00:00:01", "192.168.0.1"); err != nil {
		return err
	}
	if _, err := net.AddHost(sw, "replica-lo", 3, "00:00:00:00:00:02", "192.168.0.2"); err != nil {
		return err
	}
	clientHi, err := net.AddHost(sw, "client-hi", 1, "00:00:00:00:00:10", "200.0.0.5")
	if err != nil {
		return err
	}
	mallory, err := net.AddHost(sw, "mallory", 4, "00:00:00:00:00:0c", "10.9.9.9")
	if err != nil {
		return err
	}

	balancer := floodguard.IPBalancer()
	net.RegisterApp(balancer)
	net.Deploy()
	defer net.Close()

	guard, err := net.EnableFloodGuard(floodguard.DefaultConfig())
	if err != nil {
		return err
	}
	net.Run(500 * time.Millisecond)

	// Attack starts; FloodGuard derives the balancer's proactive rules.
	flood := net.NewFlooder(mallory, 99, floodguard.FloodUDP)
	flood.Start(300)
	net.Run(2 * time.Second)
	fmt.Printf("state=%v — proactive rules installed during the attack:\n", guard.State())
	printBalancerRules(sw)

	// The policy still enforces during the flood: a high-bit client's
	// VIP traffic is rewritten to replica-hi without any controller
	// involvement. (The balancer matches on IPs, so the L2 fields of the
	// probe are irrelevant.)
	vip, err := floodguard.ParseIP("10.10.10.10")
	if err != nil {
		return err
	}
	pkt := floodguard.UDPPacket(clientHi, clientHi, 5000, 80, 200)
	pkt.NwDst = vip
	misses := sw.Stats().Missed
	clientHi.Send(pkt)
	net.Run(500 * time.Millisecond)
	fmt.Printf("\nVIP packet from 200.0.0.5 forwarded with %d new table misses (policy preserved)\n",
		sw.Stats().Missed-misses)

	// Figure 8: the operator swaps the replica assignment mid-attack.
	fmt.Println("\n== repartition: the halves swap replicas (paper Figure 8) ==")
	hi, _ := floodguard.IPv4Value("192.168.0.2")
	lo, _ := floodguard.IPv4Value("192.168.0.1")
	balancer.State.SetScalar("replicaHi", hi)
	balancer.State.SetScalar("replicaLo", lo)
	balancer.State.SetScalar("portHi", floodguard.PortValue(3))
	balancer.State.SetScalar("portLo", floodguard.PortValue(2))
	net.Run(500 * time.Millisecond)
	fmt.Println("rules after the tracker refreshed them:")
	printBalancerRules(sw)
	return nil
}

func printBalancerRules(sw *floodguard.Switch) {
	for _, e := range sw.Table().Entries() {
		if e.Match.NwSrcMaskLen() == 1 { // the balancer's two halves
			fmt.Printf("  %s\n", e.String())
		}
	}
}

// Multiswitch: FloodGuard protecting a two-switch topology with one
// shared data plane cache — the paper's §IV.E deployment discussion
// ("ideally, we only need to deploy one data plane cache to serve all
// switches"). l2_learning runs per datapath (as POX instantiates it), so
// the analyzer derives per-switch proactive rules that reference each
// switch's own ports.
package main

import (
	"fmt"
	"log"
	"time"

	"floodguard"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := floodguard.NewNetwork()
	s1 := net.AddSwitch(0x1, floodguard.SoftwareSwitch())
	s2 := net.AddSwitch(0x2, floodguard.SoftwareSwitch())
	net.Link(s1, 2, s2, 2) // inter-switch patch on port 2 of both

	alice, err := net.AddHost(s1, "alice", 1, "00:00:00:00:00:0a", "10.0.0.1")
	if err != nil {
		return err
	}
	bob, err := net.AddHost(s2, "bob", 1, "00:00:00:00:00:0b", "10.0.0.2")
	if err != nil {
		return err
	}
	mallory, err := net.AddHost(s2, "mallory", 3, "00:00:00:00:00:0c", "10.0.0.3")
	if err != nil {
		return err
	}

	l2 := floodguard.L2Learning()
	l2.PerDatapath = true // one learning table per switch, as in POX
	net.RegisterApp(l2)
	net.Deploy()
	defer net.Close()

	guard, err := net.EnableFloodGuard(floodguard.DefaultConfig())
	if err != nil {
		return err
	}

	// Cross-switch warm-up: alice and bob talk through the patch link.
	net.Run(200 * time.Millisecond)
	alice.Send(floodguard.UDPPacket(alice, bob, 5000, 7000, 100))
	net.Run(300 * time.Millisecond)
	bob.Send(floodguard.UDPPacket(bob, alice, 7000, 5000, 100))
	net.Run(time.Second)
	fmt.Printf("warm-up: alice received %d, bob received %d (cross-switch L2 learning works)\n",
		alice.Received(), bob.Received())

	// Attack on s2.
	flood := net.NewFlooder(mallory, 42, floodguard.FloodUDP)
	flood.Start(300)
	net.Run(2 * time.Second)
	fmt.Printf("\nstate=%v after attack on s2; one shared cache absorbed %d packets\n",
		guard.State(), guard.Caches()[0].Stats().Enqueued)

	// Per-switch proactive rules for bob reference each switch's own
	// topology: on s1 bob is behind the patch (port 2); on s2 he is
	// local (port 1).
	bobMAC, _ := floodguard.ParseMAC("00:00:00:00:00:0b")
	for _, sw := range []*floodguard.Switch{s1, s2} {
		for _, e := range sw.Table().Entries() {
			if e.Match.DlDst == bobMAC && len(e.Actions) > 0 {
				fmt.Printf("  switch %#x: %s\n", sw.DPID, e.String())
			}
		}
	}

	// Benign cross-switch traffic during the attack (replayed flood
	// packets are flooded too, so count only this flow).
	benign := 0
	bob.OnReceive = func(pkt floodguard.Packet) {
		if pkt.TpDst == 7100 {
			benign++
		}
	}
	for i := 0; i < 10; i++ {
		alice.Send(floodguard.UDPPacket(alice, bob, uint16(5100+i), 7100, 100))
	}
	net.Run(time.Second)
	fmt.Printf("\nbob received %d of 10 cross-switch benign packets during the flood\n", benign)
	return nil
}

// Package floodguard is a Go reproduction of "FloodGuard: A DoS Attack
// Prevention Extension in Software-Defined Networks" (Wang, Xu, Gu —
// DSN 2015): a defense framework against the data-to-control plane
// saturation attack, built on a self-contained OpenFlow 1.0 stack.
//
// The package is the public facade over the building blocks in
// internal/: a discrete-event network simulator, an OpenFlow switch
// model, a POX-style reactive controller whose applications are written
// in an analyzable policy IR, the proactive flow rule analyzer (offline
// symbolic execution + runtime concretization), and the packet migration
// module (migration agent + data plane cache).
//
// Quick start:
//
//	net := floodguard.NewNetwork()
//	sw := net.AddSwitch(1, floodguard.SoftwareSwitch())
//	alice, _ := net.AddHost(sw, "alice", 1, "00:00:00:00:00:0a", "10.0.0.1")
//	bob, _ := net.AddHost(sw, "bob", 2, "00:00:00:00:00:0b", "10.0.0.2")
//	mallory, _ := net.AddHost(sw, "mallory", 3, "00:00:00:00:00:0c", "10.0.0.3")
//	net.RegisterApp(floodguard.L2Learning())
//	net.Deploy()
//	guard, _ := net.EnableFloodGuard(floodguard.DefaultConfig())
//	flood := net.NewFlooder(mallory, 42, floodguard.FloodUDP)
//	flood.Start(200)
//	net.Run(2 * time.Second)
//	fmt.Println(guard.State()) // defense
package floodguard

import (
	"fmt"
	"time"

	"floodguard/internal/appir"
	"floodguard/internal/apps"
	"floodguard/internal/controller"
	"floodguard/internal/core"
	"floodguard/internal/dpcache"
	"floodguard/internal/netpkt"
	"floodguard/internal/netsim"
	"floodguard/internal/switchsim"
	"floodguard/internal/symexec"
)

// Re-exported building blocks. The aliases make the internal types part
// of the public API surface without duplicating them.
type (
	// Config assembles a FloodGuard deployment (detection thresholds,
	// analyzer update strategy, cache dimensions, replay rate policy).
	Config = core.Config
	// Guard is a running FloodGuard instance.
	Guard = core.Guard
	// FSMState is a state of the Figure 3 machine.
	FSMState = core.FSMState
	// App couples a policy program with its state and CPU cost model.
	App = controller.App
	// Controller is the reactive controller platform.
	Controller = controller.Controller
	// Switch is a simulated OpenFlow switch.
	Switch = switchsim.Switch
	// Host is an end host attached to a switch port.
	Host = switchsim.Host
	// Flooder generates the saturation attack's spoofed traffic.
	Flooder = switchsim.Flooder
	// Profile sets a switch's capacity constants.
	Profile = switchsim.Profile
	// Program is a controller application in the policy IR.
	Program = appir.Program
	// State is a program's global variable store.
	State = appir.State
	// Cache is a data plane cache instance.
	Cache = dpcache.Cache
	// Path is one symbolic execution path of a handler.
	Path = symexec.Path
	// FloodProtocol selects the attack traffic family.
	FloodProtocol = netpkt.FloodProtocol
	// Packet is a data plane packet.
	Packet = netpkt.Packet
	// Value is a typed scalar in an application's global state.
	Value = appir.Value
	// IPAddr is an IPv4 address.
	IPAddr = netpkt.IPv4
	// MACAddr is an Ethernet address.
	MACAddr = netpkt.MAC
)

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IPAddr, error) { return netpkt.ParseIPv4(s) }

// ParseMAC parses a colon-separated Ethernet address.
func ParseMAC(s string) (MACAddr, error) { return netpkt.ParseMAC(s) }

// IPv4Value parses a dotted-quad address into a state Value (for
// updating application scalars such as the balancer's replica targets).
func IPv4Value(s string) (Value, error) {
	ip, err := netpkt.ParseIPv4(s)
	if err != nil {
		return Value{}, err
	}
	return appir.IPValue(ip), nil
}

// PortValue wraps a switch port number into a state Value.
func PortValue(p uint16) Value { return appir.U16Value(p) }

// FSM states (Figure 3).
const (
	StateIdle    = core.StateIdle
	StateInit    = core.StateInit
	StateDefense = core.StateDefense
	StateFinish  = core.StateFinish
)

// Flood traffic families.
const (
	FloodUDP   = netpkt.FloodUDP
	FloodTCP   = netpkt.FloodTCP
	FloodICMP  = netpkt.FloodICMP
	FloodMixed = netpkt.FloodMixed
)

// DefaultConfig returns the paper-faithful FloodGuard configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// SoftwareSwitch returns the Mininet-like software switch profile of the
// paper's Figure 10 environment.
func SoftwareSwitch() Profile { return switchsim.SoftwareProfile() }

// HardwareSwitch returns the LinkSys WRT54GL (Pantou/OpenWRT) profile of
// the Figure 11 environment.
func HardwareSwitch() Profile { return switchsim.HardwareProfile() }

// Bundled controller applications (paper Tables I and III). Each returns
// an App with its conventional initial state and a representative CPU
// cost; adjust App.CostPerEvent to taste.
func L2Learning() *App { return wrapApp(apps.L2Learning()) }
func ARPHub() *App     { return wrapApp(apps.ARPHub()) }
func L3Learning() *App { return wrapApp(apps.L3Learning()) }
func OFFirewall() *App { return wrapApp(apps.OFFirewall()) }
func MACBlocker() *App { return wrapApp(apps.MACBlocker()) }
func RouteApp() *App   { return wrapApp(apps.Route()) }

// IPBalancer returns the Table I load balancer with the default VIP and
// replica assignment.
func IPBalancer() *App { return wrapApp(apps.IPBalancer(apps.DefaultIPBalancerConfig())) }

func wrapApp(prog *appir.Program, st *appir.State) *App {
	return &App{Prog: prog, State: st, CostPerEvent: time.Millisecond}
}

// UDPPacket builds a benign UDP packet from one host to another.
func UDPPacket(from, to *Host, srcPort, dstPort uint16, payloadLen int) Packet {
	return netpkt.Flow{
		SrcMAC: from.MAC, DstMAC: to.MAC,
		SrcIP: from.IP, DstIP: to.IP,
		Proto: netpkt.ProtoUDP, SrcPort: srcPort, DstPort: dstPort,
	}.Packet(payloadLen)
}

// TCPSYN builds the first handshake packet of a new TCP flow between two
// hosts.
func TCPSYN(from, to *Host, srcPort, dstPort uint16) Packet {
	return netpkt.Flow{
		SrcMAC: from.MAC, DstMAC: to.MAC,
		SrcIP: from.IP, DstIP: to.IP,
		Proto: netpkt.ProtoTCP, SrcPort: srcPort, DstPort: dstPort,
	}.SYN()
}

// Analyze runs the offline symbolic execution (paper Algorithm 1) over an
// application program and returns its feasible paths with their path
// conditions and terminal decisions.
func Analyze(prog *Program) ([]Path, error) { return symexec.Explore(prog) }

// StateSensitiveVariables reports the global variables a program's
// handler reads — the paper's Table III content for that app.
func StateSensitiveVariables(paths []Path) []string {
	return symexec.StateSensitiveVariables(paths)
}

// ProactiveRule is one rule derived by Algorithm 2, traceable to the
// symbolic path it came from.
type ProactiveRule = symexec.ProactiveRule

// DeriveProactiveRules runs the paper's Algorithm 2: it substitutes the
// live values of the global variables into the recorded path conditions
// and converts every Modify-State path into concrete proactive flow
// rules.
func DeriveProactiveRules(paths []Path, st *State) ([]ProactiveRule, error) {
	return symexec.DeriveRules(paths, st)
}

// Network is a construction kit for simulated SDN deployments: switches,
// hosts, a reactive controller, applications, and (optionally) a
// FloodGuard instance, all on one deterministic virtual clock.
type Network struct {
	eng      *netsim.Engine
	ctrl     *controller.Controller
	switches []*Switch
	guard    *Guard
	deployed bool
}

// NewNetwork creates an empty deployment.
func NewNetwork() *Network {
	eng := netsim.NewEngine()
	c := controller.New(eng)
	c.BaseCost = 200 * time.Microsecond
	return &Network{eng: eng, ctrl: c}
}

// Controller returns the controller platform (register hooks, inspect
// per-app accounting).
func (n *Network) Controller() *Controller { return n.ctrl }

// Now returns the current virtual time since the simulation epoch.
func (n *Network) Now() time.Duration { return n.eng.Elapsed() }

// AddSwitch creates a switch with the given datapath id and profile.
func (n *Network) AddSwitch(dpid uint64, p Profile) *Switch {
	sw := switchsim.New(n.eng, dpid, p)
	sw.Start()
	n.switches = append(n.switches, sw)
	return sw
}

// AddHost attaches a host to a switch port with 1 Gbps edge links.
func (n *Network) AddHost(sw *Switch, name string, port uint16, mac, ip string) (*Host, error) {
	m, err := netpkt.ParseMAC(mac)
	if err != nil {
		return nil, fmt.Errorf("floodguard: host %s: %w", name, err)
	}
	addr, err := netpkt.ParseIPv4(ip)
	if err != nil {
		return nil, fmt.Errorf("floodguard: host %s: %w", name, err)
	}
	return switchsim.NewHost(n.eng, sw, name, port, m, addr, 1e9, 100*time.Microsecond), nil
}

// Link connects two switches with a 10 Gbps inter-switch patch link.
// For multi-switch topologies, set PerDatapath on learning apps so each
// switch keeps its own port mappings.
func (n *Network) Link(a *Switch, pa uint16, b *Switch, pb uint16) {
	switchsim.Patch(a, pa, b, pb, 10e9, 50*time.Microsecond)
}

// RegisterApp adds a controller application; dispatch order is
// registration order.
func (n *Network) RegisterApp(app *App) { n.ctrl.Register(app) }

// Deploy opens the controller sessions to every switch. Call after all
// switches and apps are in place and before EnableFloodGuard.
func (n *Network) Deploy() {
	controller.Bind(n.ctrl, n.switches...)
	n.deployed = true
}

// EnableFloodGuard attaches a FloodGuard instance protecting every
// deployed switch and starts its monitoring.
func (n *Network) EnableFloodGuard(cfg Config) (*Guard, error) {
	if !n.deployed {
		return nil, fmt.Errorf("floodguard: Deploy before EnableFloodGuard")
	}
	g, err := core.NewGuard(n.eng, n.ctrl, cfg)
	if err != nil {
		return nil, err
	}
	for _, sw := range n.switches {
		if err := g.Protect(sw); err != nil {
			return nil, err
		}
	}
	if err := g.Start(); err != nil {
		return nil, err
	}
	n.guard = g
	return g, nil
}

// Guard returns the FloodGuard instance, if enabled.
func (n *Network) Guard() *Guard { return n.guard }

// NewFlooder builds a saturation attack source on a host.
func (n *Network) NewFlooder(h *Host, seed int64, proto FloodProtocol) *Flooder {
	return switchsim.NewFlooder(h, seed, proto, 64)
}

// Run advances the simulation by d of virtual time.
func (n *Network) Run(d time.Duration) { n.eng.RunFor(d) }

// RunUntil advances the simulation until cond holds or the budget is
// exhausted, polling every step. It reports whether cond held.
func (n *Network) RunUntil(cond func() bool, step, budget time.Duration) bool {
	deadline := n.eng.Elapsed() + budget
	for n.eng.Elapsed() < deadline {
		if cond() {
			return true
		}
		n.eng.RunFor(step)
	}
	return cond()
}

// Close stops all periodic work (switches, guard).
func (n *Network) Close() {
	if n.guard != nil {
		n.guard.Stop()
	}
	for _, sw := range n.switches {
		sw.Stop()
	}
}

GO ?= go
# Per-target budget for the coverage-guided fuzz smoke (raise locally for
# a real hunt: make fuzz FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: all build test race vet bench bench-all check fuzz ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pooled marshal and batched sideband paths are the ones most worth
# racing; run the whole tree so regressions elsewhere surface too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Substrate microbenches only (-run=^$ skips tests). The root package's
# scenario benches each replay a full experiment per iteration, so bench
# filters them out; bench-all regenerates the paper's tables and figures
# too and takes correspondingly long.
bench:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./internal/...
	$(GO) test -bench='OpenFlow|PacketMarshalParse|FlowTableLookup|CacheIngestEmit|ConcreteInterpreter' \
		-benchtime=100x -benchmem -run=^$$ .

bench-all:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./...

check: build vet test race

# The three wire-facing decoders, each under coverage-guided fuzzing for
# FUZZTIME. Any crasher is written to the package's testdata/fuzz/ and
# replays as a plain test case from then on.
fuzz:
	$(GO) test ./internal/netpkt/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dpcproto/ -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME)

# Everything CI runs, in CI's order.
ci: build vet test race fuzz

GO ?= go
# Per-target budget for the coverage-guided fuzz smoke (raise locally for
# a real hunt: make fuzz FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: all build test race vet bench bench-all bench-telemetry bench-json bench-json5 cover check fuzz ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pooled marshal and batched sideband paths are the ones most worth
# racing; run the whole tree so regressions elsewhere surface too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Substrate microbenches only (-run=^$ skips tests). The root package's
# scenario benches each replay a full experiment per iteration, so bench
# filters them out; bench-all regenerates the paper's tables and figures
# too and takes correspondingly long.
bench:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./internal/...
	$(GO) test -bench='OpenFlow|PacketMarshalParse|FlowTableLookup|CacheIngestEmit|ConcreteInterpreter' \
		-benchtime=100x -benchmem -run=^$$ .

bench-all:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./...

# The observability hot paths: telemetry primitives plus the two PR-1
# fast-path benches the instrumentation must not regress (both have a
# 0 allocs/op budget).
bench-telemetry:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./internal/telemetry/
	$(GO) test -bench=MicroflowHit -benchtime=100x -benchmem -run=^$$ .
	$(GO) test -bench=WriteReplay -benchtime=100x -benchmem -run=^$$ ./internal/dpcproto/

# The PR-4 performance families rendered as BENCH_4.json with
# regression gates: the two 0-alloc fast paths must stay 0-alloc, the
# warm memo must stay an order of magnitude under the cold derive, and
# the 1000-path sequential derive has an absolute ceiling generous
# enough for slow CI machines (~6x the reference box).
bench-json:
	@rm -f bench4.txt
	$(GO) test -bench='BenchmarkMicroflowHit$$|BenchmarkDeriveRules' -benchtime=20x -benchmem -run=^$$ . | tee -a bench4.txt
	$(GO) test -bench=WriteReplay -benchtime=100x -benchmem -run=^$$ ./internal/dpcproto/ | tee -a bench4.txt
	$(GO) test -bench=Concretize -benchtime=100x -benchmem -run=^$$ ./internal/solver/ | tee -a bench4.txt
	$(GO) test -bench=MicroflowHitRetention -benchtime=10000x -benchmem -run=^$$ ./internal/flowtable/ | tee -a bench4.txt
	$(GO) run ./cmd/benchjson -in bench4.txt -out BENCH_4.json \
		-gate 'BenchmarkMicroflowHit(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkWriteReplay/write-replay(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkDeriveRules/paths-1000/workers-1(-|$$):ns_per_op<=60000000' \
		-gate 'BenchmarkDeriveRulesMemo/warm/paths-1000(-|$$):ns_per_op<=6000000' \
		-gate 'BenchmarkConcretize/entries=1024(-|$$):allocs_per_op<=16' \
		-gate 'BenchmarkMicroflowHitRetentionUnderChurn/churn-every-16(-|$$):hitrate>=0.9'

# The PR-5 attribution hot paths rendered as BENCH_5.json: the per-packet
# sketch Update/Estimate and the heavy-hitter Observe run on the sampled
# packet_in path, so all carry a 0 allocs/op budget; the extended replay
# framing must stay allocation-free too.
bench-json5:
	@rm -f bench5.txt
	$(GO) test -bench=. -benchtime=10000x -benchmem -run=^$$ ./internal/sketch/ | tee -a bench5.txt
	$(GO) test -bench=WriteReplay -benchtime=100x -benchmem -run=^$$ ./internal/dpcproto/ | tee -a bench5.txt
	$(GO) run ./cmd/benchjson -in bench5.txt -out BENCH_5.json \
		-gate 'BenchmarkCountMinUpdate(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkCountMinEstimate(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkSpaceSavingObserveTracked(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkSpaceSavingObserveChurn(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkWriteReplay/write-replay(-|$$):allocs_per_op<=0'

# Coverage over the whole tree; cover.out is the artifact CI uploads.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -1

check: build vet test race

# The three wire-facing decoders plus the symbolic-execution pipeline,
# each under coverage-guided fuzzing for FUZZTIME. Any crasher is
# written to the package's testdata/fuzz/ and replays as a plain test
# case from then on.
fuzz:
	$(GO) test ./internal/netpkt/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dpcproto/ -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dpcproto/ -run '^$$' -fuzz FuzzReplayHintRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/symexec/ -run '^$$' -fuzz FuzzExplore -fuzztime $(FUZZTIME)

# Everything CI runs, in CI's order.
ci: build vet test race fuzz

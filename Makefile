GO ?= go
# Per-target budget for the coverage-guided fuzz smoke (raise locally for
# a real hunt: make fuzz FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: all build test race vet bench bench-all bench-telemetry bench-json bench-json5 bench-json6 bench-json7 bench-json8 bench-json9 bench-json10 cover check fuzz soak-short ci

all: build test

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# cannot hide; failures print the shuffle seed for replay.
test:
	$(GO) test -shuffle=on ./...

# The pooled marshal and batched sideband paths are the ones most worth
# racing; run the whole tree so regressions elsewhere surface too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Substrate microbenches only (-run=^$ skips tests). The root package's
# scenario benches each replay a full experiment per iteration, so bench
# filters them out; bench-all regenerates the paper's tables and figures
# too and takes correspondingly long.
bench:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./internal/...
	$(GO) test -bench='OpenFlow|PacketMarshalParse|FlowTableLookup|CacheIngestEmit|ConcreteInterpreter' \
		-benchtime=100x -benchmem -run=^$$ .

bench-all:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./...

# The observability hot paths: telemetry primitives plus the two PR-1
# fast-path benches the instrumentation must not regress (both have a
# 0 allocs/op budget).
bench-telemetry:
	$(GO) test -bench=. -benchtime=100x -benchmem -run=^$$ ./internal/telemetry/
	$(GO) test -bench=MicroflowHit -benchtime=100x -benchmem -run=^$$ .
	$(GO) test -bench=WriteReplay -benchtime=100x -benchmem -run=^$$ ./internal/dpcproto/

# The PR-4 performance families rendered as BENCH_4.json with
# regression gates: the two 0-alloc fast paths must stay 0-alloc, the
# warm memo must stay an order of magnitude under the cold derive, and
# the 1000-path sequential derive has an absolute ceiling generous
# enough for slow CI machines (~6x the reference box).
bench-json:
	@rm -f bench4.txt
	$(GO) test -bench='BenchmarkMicroflowHit$$|BenchmarkDeriveRules' -benchtime=20x -benchmem -run=^$$ . | tee -a bench4.txt
	$(GO) test -bench=WriteReplay -benchtime=100x -benchmem -run=^$$ ./internal/dpcproto/ | tee -a bench4.txt
	$(GO) test -bench=Concretize -benchtime=100x -benchmem -run=^$$ ./internal/solver/ | tee -a bench4.txt
	$(GO) test -bench=MicroflowHitRetention -benchtime=10000x -benchmem -run=^$$ ./internal/flowtable/ | tee -a bench4.txt
	$(GO) run ./cmd/benchjson -in bench4.txt -out BENCH_4.json \
		-gate 'BenchmarkMicroflowHit(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkWriteReplay/write-replay(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkDeriveRules/paths-1000/workers-1(-|$$):ns_per_op<=60000000' \
		-gate 'BenchmarkDeriveRulesMemo/warm/paths-1000(-|$$):ns_per_op<=6000000' \
		-gate 'BenchmarkConcretize/entries=1024(-|$$):allocs_per_op<=16' \
		-gate 'BenchmarkMicroflowHitRetentionUnderChurn/churn-every-16(-|$$):hitrate>=0.9'

# The PR-5 attribution hot paths rendered as BENCH_5.json: the per-packet
# sketch Update/Estimate and the heavy-hitter Observe run on the sampled
# packet_in path, so all carry a 0 allocs/op budget; the extended replay
# framing must stay allocation-free too.
bench-json5:
	@rm -f bench5.txt
	$(GO) test -bench=. -benchtime=10000x -benchmem -run=^$$ ./internal/sketch/ | tee -a bench5.txt
	$(GO) test -bench=WriteReplay -benchtime=100x -benchmem -run=^$$ ./internal/dpcproto/ | tee -a bench5.txt
	$(GO) run ./cmd/benchjson -in bench5.txt -out BENCH_5.json \
		-gate 'BenchmarkCountMinUpdate(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkCountMinEstimate(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkSpaceSavingObserveTracked(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkSpaceSavingObserveChurn(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkWriteReplay/write-replay(-|$$):allocs_per_op<=0'

# The PR-6 run-to-completion engine rendered as BENCH_6.json: the SPSC
# ring, the per-packet shard body (0 allocs AND 0 mutex-profile waits —
# the zero-lock witness), the cache replay hop, the shard-local flow
# lookup, and the whole-pipeline sustained-pps macro benchmark. The pps
# floor and p99 ceiling are deliberately generous so slow single-core CI
# boxes pass; the architectural >=2x speedup self-asserts inside the
# macro bench only on machines with >=4 CPUs.
bench-json6:
	@rm -f bench6.txt
	$(GO) test -bench='RingPushPop|RingBatch64' -benchtime=10000x -benchmem -run=^$$ ./internal/spsc/ | tee -a bench6.txt
	$(GO) test -bench='ShardPerPacket|RingHandoff' -benchtime=10000x -benchmem -run=^$$ ./internal/rtc/ | tee -a bench6.txt
	$(GO) test -bench=CacheReplay -benchtime=10000x -benchmem -run=^$$ ./internal/dpcache/ | tee -a bench6.txt
	$(GO) test -bench=ConcurrentShardHit -benchtime=10000x -benchmem -run=^$$ ./internal/flowtable/ | tee -a bench6.txt
	$(GO) test -bench='SustainedPPS$$' -benchtime=1x -run=^$$ ./internal/experiments/ | tee -a bench6.txt
	$(GO) run ./cmd/benchjson -in bench6.txt -out BENCH_6.json \
		-gate 'BenchmarkRingPushPop(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkRingBatch64(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkShardPerPacket(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkShardPerPacket(-|$$):mutexwaits<=0' \
		-gate 'BenchmarkRingHandoff(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkCacheReplay/no-hinter(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkCacheReplay/hinter(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkConcurrentShardHit(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkSustainedPPS/mode=sharded(-|$$):pps>=50000' \
		-gate 'BenchmarkSustainedPPS/mode=sharded(-|$$):p99ms<=250'

# The PR-7 adversarial-soak quality tier rendered as BENCH_7.json: one
# full soak (all four adaptive attacker profiles + seeded chaos) per
# iteration, gated on the run's quality numbers — zero invariant
# violations, benign collateral loss under the 1% ceiling, every bounded
# structure within budget, every above-floor attacker blamed, and a
# generous wall-clock throughput floor for slow CI boxes.
bench-json7:
	@rm -f bench7.txt
	$(GO) test -bench=SoakQuality -benchtime=3x -benchmem -run=^$$ ./internal/soak/ | tee bench7.txt
	$(GO) run ./cmd/benchjson -in bench7.txt -out BENCH_7.json \
		-gate 'BenchmarkSoakQuality(-|$$):violations<=0' \
		-gate 'BenchmarkSoakQuality(-|$$):benign_loss<=0.01' \
		-gate 'BenchmarkSoakQuality(-|$$):mem_frac<=1' \
		-gate 'BenchmarkSoakQuality(-|$$):detected>=1' \
		-gate 'BenchmarkSoakQuality(-|$$):pps>=50000'

# The PR-8 decision-forensics tier rendered as BENCH_8.json: the raw
# journal append, the instrumented shard body (journal-on must stay
# 0 allocs and lock-free like the bare PR-6 path), and the macro
# journal-on/off sustained-pps delta — forensics may cost at most 2%
# of sustained throughput.
bench-json8:
	@rm -f bench8.txt
	$(GO) test -bench=JournalAppend -benchtime=10000x -benchmem -run=^$$ ./internal/journal/ | tee -a bench8.txt
	$(GO) test -bench=JournalShardBody -benchtime=10000x -benchmem -run=^$$ ./internal/rtc/ | tee -a bench8.txt
	$(GO) test -bench=JournalPPSDelta -benchtime=3x -run=^$$ ./internal/experiments/ | tee -a bench8.txt
	$(GO) run ./cmd/benchjson -in bench8.txt -out BENCH_8.json \
		-gate 'BenchmarkJournalAppend(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkJournalShardBody/journal-on(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkJournalShardBody/journal-on(-|$$):mutexwaits<=0' \
		-gate 'BenchmarkJournalPPSDelta(-|$$):pps_ratio>=0.98'

# The PR-9 lock-free rule-application tier rendered as BENCH_9.json:
# the shard body under in-band rule churn (0 allocs AND 0 mutex-profile
# contention while flow_mods delete and re-add a served rule every 64
# packets — the witness that Apply never makes the serving path take a
# writer lock), plus the mixed lookup+Apply macro benchmark: sustained
# pps with 1000 flow_mods/s of churn, writer-lock arm vs the
# shard-partitioned engine. The pps floor, p99 ceiling, and flow_mod
# floor are generous for slow CI boxes; the >=1.5x churn speedup
# self-asserts inside the macro bench only on machines with >=4 CPUs.
bench-json9:
	@rm -f bench9.txt
	$(GO) test -bench=ShardChurnBody -benchtime=200000x -benchmem -run=^$$ ./internal/rtc/ | tee -a bench9.txt
	$(GO) test -bench=SustainedPPSChurn -benchtime=1x -run=^$$ ./internal/experiments/ | tee -a bench9.txt
	$(GO) run ./cmd/benchjson -in bench9.txt -out BENCH_9.json \
		-gate 'BenchmarkShardChurnBody(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkShardChurnBody(-|$$):mutexwaits<=0' \
		-gate 'BenchmarkShardChurnBody(-|$$):flowmods>=1' \
		-gate 'BenchmarkSustainedPPSChurn/mode=sharded(-|$$):pps>=50000' \
		-gate 'BenchmarkSustainedPPSChurn/mode=sharded(-|$$):p99ms<=250' \
		-gate 'BenchmarkSustainedPPSChurn/mode=sharded(-|$$):flowmods>=100'

# The PR-10 SYN-proxy tier rendered as BENCH_10.json: the stateless
# cookie encode/validate and the sharded connection-table lookup all sit
# on the per-SYN data-plane path, so each carries a 0 allocs/op budget;
# the full guard Process (parse + verdict + table walk) must stay
# allocation-free too.
bench-json10:
	@rm -f bench10.txt
	$(GO) test -bench='CookieEncode|CookieValidate|ConnTableLookup|GuardProcess' \
		-benchtime=10000x -benchmem -run=^$$ ./internal/tcpguard/ | tee bench10.txt
	$(GO) run ./cmd/benchjson -in bench10.txt -out BENCH_10.json \
		-gate 'BenchmarkCookieEncode(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkCookieValidate(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkConnTableLookup(-|$$):allocs_per_op<=0' \
		-gate 'BenchmarkGuardProcess(-|$$):allocs_per_op<=0'

# The deterministic tier-A soak on its own, in short mode — the
# seconds-scale smoke ci runs on every push.
soak-short:
	$(GO) test -short -count=1 -run 'TestSoak|TestDifferential' ./internal/soak/

# Coverage over the whole tree; cover.out is the artifact CI uploads.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -1

check: build vet test race

# The three wire-facing decoders plus the symbolic-execution pipeline,
# each under coverage-guided fuzzing for FUZZTIME. Any crasher is
# written to the package's testdata/fuzz/ and replays as a plain test
# case from then on.
fuzz:
	$(GO) test ./internal/netpkt/ -run '^$$' -fuzz FuzzParse$$ -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netpkt/ -run '^$$' -fuzz FuzzTCP -fuzztime $(FUZZTIME)
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dpcproto/ -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dpcproto/ -run '^$$' -fuzz FuzzReplayHintRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/symexec/ -run '^$$' -fuzz FuzzExplore -fuzztime $(FUZZTIME)
	$(GO) test ./internal/soak/ -run '^$$' -fuzz FuzzParseScenario -fuzztime $(FUZZTIME)

# Everything CI runs, in CI's order.
ci: build vet test race fuzz
